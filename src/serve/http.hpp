// Minimal HTTP/1.1 message types and wire parsing — enough protocol for
// the MCBound REST API (the paper deploys a flask backend; this is the
// dependency-free C++ equivalent). Supports request line + headers +
// Content-Length bodies; no chunked encoding. Messages are parsed one
// at a time — keep-alive and pipelining are the reactor's job
// (serve/server.cpp), which frames each message off the connection
// buffer via expected_request_length() before parsing it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcb {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string path;     ///< "/predict" (query string split off into `query`)
  std::string query;    ///< raw query string without '?'
  std::map<std::string, std::string> headers;  ///< lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra response headers (e.g. X-Request-Id), serialized verbatim
  /// after Content-Type/Content-Length. Keys keep their given casing.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  static HttpResponse json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

/// Reason phrase for the handful of status codes the API uses.
std::string_view http_status_text(int status) noexcept;

/// Parse a full request (head + body already concatenated). Returns
/// nullopt on malformed input.
std::optional<HttpRequest> parse_http_request(std::string_view raw);

/// Serialize a response to the wire format (adds Content-Length). The
/// Connection header reflects `keep_alive`: the reactor keeps sockets
/// open across requests unless the client asked to close (or the
/// response terminates the connection — errors, shedding, drain).
std::string serialize_http_response(const HttpResponse& response,
                                    bool keep_alive = false);

/// Sentinel returned by expected_request_length for a head whose framing
/// cannot be trusted (unparsable or duplicate Content-Length): the caller
/// must reject the request with 400 rather than guess a body length.
inline constexpr std::size_t kInvalidRequestFraming = static_cast<std::size_t>(-1);

/// Incremental request reader helper: given the bytes received so far,
/// returns the total expected length (head + Content-Length) once the
/// header terminator has arrived, 0 if more header bytes are needed, or
/// kInvalidRequestFraming if the Content-Length header is present but
/// invalid (non-numeric, or repeated).
std::size_t expected_request_length(std::string_view received);

}  // namespace mcb
