#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>

#include "obs/log.hpp"
#include "util/strings.hpp"

namespace mcb {
namespace {

using Clock = std::chrono::steady_clock;

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_response(int fd, const HttpResponse& response) {
  return send_all(fd, serialize_http_response(response));
}

void set_socket_timeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

Json latency_json(const Histogram& log10_us, double sum_us, double max_us,
                  std::uint64_t count) {
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(count));
  out.set("mean", count > 0 ? sum_us / static_cast<double>(count) : 0.0);
  out.set("max", max_us);
  out.set("p50", std::pow(10.0, log10_us.quantile(0.50)));
  out.set("p90", std::pow(10.0, log10_us.quantile(0.90)));
  out.set("p99", std::pow(10.0, log10_us.quantile(0.99)));
  return out;
}

}  // namespace

void ServerStats::record_route(const std::string& route_key, int status,
                               double seconds) {
  const double us = std::max(seconds * 1e6, 0.0);
  MutexLock lock(mutex_);
  RouteStats& rs = routes_[route_key];
  ++rs.count;
  if (status >= 500) {
    ++rs.status_5xx;
  } else if (status >= 400) {
    ++rs.status_4xx;
  } else if (status >= 200 && status < 300) {
    ++rs.status_2xx;
  } else {
    // 1xx/3xx (and anything below 100): count them visibly instead of
    // inflating the 2xx success rate.
    ++rs.status_other;
  }
  rs.sum_us += us;
  rs.max_us = std::max(rs.max_us, us);
  rs.log10_us.add(std::log10(std::max(us, 1.0)));
}

Json ServerStats::to_json() const {
  Json out = Json::object();
  out.set("accepted", static_cast<std::int64_t>(accepted.load()));
  out.set("handled", static_cast<std::int64_t>(handled.load()));
  out.set("rejected", static_cast<std::int64_t>(rejected.load()));
  out.set("timed_out", static_cast<std::int64_t>(timed_out.load()));
  out.set("malformed", static_cast<std::int64_t>(malformed.load()));

  Json routes = Json::object();
  {
    MutexLock lock(mutex_);
    for (const auto& [key, rs] : routes_) {
      Json entry = Json::object();
      entry.set("count", static_cast<std::int64_t>(rs.count));
      Json status = Json::object();
      status.set("2xx", static_cast<std::int64_t>(rs.status_2xx));
      status.set("4xx", static_cast<std::int64_t>(rs.status_4xx));
      status.set("5xx", static_cast<std::int64_t>(rs.status_5xx));
      status.set("other", static_cast<std::int64_t>(rs.status_other));
      entry.set("status", status);
      entry.set("latency_us", latency_json(rs.log10_us, rs.sum_us, rs.max_us, rs.count));
      routes.set(key, entry);
    }
  }
  out.set("routes", routes);
  return out;
}

void ServerStats::collect_metrics(std::vector<obs::MetricFamily>& out) const {
  {
    obs::MetricFamily conns;
    conns.name = "mcb_http_connections_total";
    conns.help = "Connection outcomes by event (accepted, handled, rejected, "
                 "timed_out, malformed).";
    conns.type = obs::MetricType::kCounter;
    const std::pair<const char*, std::uint64_t> events[] = {
        {"accepted", accepted.load()},   {"handled", handled.load()},
        {"rejected", rejected.load()},   {"timed_out", timed_out.load()},
        {"malformed", malformed.load()},
    };
    for (const auto& [event, value] : events) {
      conns.points.push_back(
          obs::scalar_point({{"event", event}}, static_cast<double>(value)));
    }
    out.push_back(std::move(conns));
  }

  obs::MetricFamily requests;
  requests.name = "mcb_http_requests_total";
  requests.help = "Dispatched requests by route and status class.";
  requests.type = obs::MetricType::kCounter;

  obs::MetricFamily durations;
  durations.name = "mcb_http_request_duration_seconds";
  durations.help = "Handler latency by route.";
  durations.type = obs::MetricType::kHistogram;

  MutexLock lock(mutex_);
  for (const auto& [key, rs] : routes_) {
    const std::pair<const char*, std::uint64_t> classes[] = {
        {"2xx", rs.status_2xx}, {"4xx", rs.status_4xx},
        {"5xx", rs.status_5xx}, {"other", rs.status_other},
    };
    for (const auto& [cls, value] : classes) {
      if (value == 0) continue;  // keep the exposition sparse
      requests.points.push_back(obs::scalar_point(
          {{"route", key}, {"class", cls}}, static_cast<double>(value)));
    }

    // Re-express the log10(us) histogram as cumulative seconds buckets:
    // bin upper edges 10^hi us become le bounds 10^hi * 1e-6 s.
    obs::MetricPoint point;
    point.labels = {{"route", key}};
    std::uint64_t running = 0;
    for (std::size_t bin = 0; bin < rs.log10_us.bins(); ++bin) {
      running += rs.log10_us.bin_count(bin);
      point.bounds.push_back(std::pow(10.0, rs.log10_us.bin_hi(bin)) * 1e-6);
      point.cumulative.push_back(running);
    }
    point.count = rs.count;
    point.sum = rs.sum_us * 1e-6;
    durations.points.push_back(std::move(point));
  }
  out.push_back(std::move(requests));
  out.push_back(std::move(durations));
}

HttpServer::HttpServer(ServerConfig config) : config_(config) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
}

// NOLINTNEXTLINE(bugprone-exception-escape) — stop() joins worker threads
// and may throw system_error on corrupt thread state; terminating there is
// better than leaking joinable threads (see .clang-tidy scope note).
HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       HttpHandler handler) {
  routes_[{method, path}] = std::move(handler);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  // The socket path installs the request's trace before calling in; the
  // socketless path (unit tests, in-process clients) gets a local trace
  // here so spans and X-Request-Id echo behave identically.
  obs::TraceContext* trace = obs::current_trace();
  std::optional<obs::TraceContext> local_trace;
  std::optional<obs::TraceScope> local_scope;
  if (trace == nullptr) {
    const auto id_it = request.headers.find("x-request-id");
    local_trace.emplace(tracer_.make_trace(
        id_it != request.headers.end() ? std::string_view(id_it->second)
                                       : std::string_view{}));
    local_scope.emplace(&*local_trace);
    trace = &*local_trace;
  }

  const auto started = Clock::now();
  decltype(routes_)::const_iterator it;
  HttpResponse response;
  bool matched = false;
  {
    obs::Span route_span(trace, obs::Stage::kRoute);
    it = routes_.find({request.method, request.path});
    matched = it != routes_.end();
    if (!matched) {
      // Distinguish 404 from 405 for better API ergonomics.
      bool path_exists = false;
      for (const auto& [key, handler] : routes_) {
        (void)handler;
        if (key.second == request.path) {
          path_exists = true;
          break;
        }
      }
      response = path_exists
                     ? HttpResponse::json(405, R"({"error":"method not allowed"})")
                     : HttpResponse::json(404, R"({"error":"not found"})");
    }
  }
  if (matched) {
    try {
      response = it->second(request);
    } catch (const std::exception& e) {
      response = HttpResponse::json(
          500, std::string(R"({"error":")") + json_escape(e.what()) + "\"}");
    }
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - started).count();
  const std::string key = matched ? request.method + " " + request.path : "(unmatched)";
  stats_.record_route(key, response.status, seconds);
  trace->set_route(key);
  response.headers.emplace_back("X-Request-Id", trace->id());
  if (local_trace.has_value()) {
    local_scope.reset();
    tracer_.finish(*local_trace, response.status, key);
  }
  return response;
}

Json HttpServer::stats_json() const {
  const Json stats = stats_.to_json();
  Json server = Json::object();
  for (const auto& [key, value] : stats.as_object()) {
    if (key != "routes") server.set(key, value);
  }
  server.set("active_connections", static_cast<std::int64_t>(active_connections()));
  server.set("worker_threads", static_cast<std::int64_t>(config_.worker_threads));
  server.set("queue_capacity", static_cast<std::int64_t>(config_.max_pending));
  server.set("queue_depth",
             static_cast<std::int64_t>(pool_ != nullptr ? pool_->pending() : 0));
  Json out = Json::object();
  out.set("server", server);
  out.set("routes", stats["routes"]);
  return out;
}

std::size_t HttpServer::active_connections() const {
  MutexLock lock(conn_mutex_);
  return active_fds_.size();
}

bool HttpServer::start(int port) {
  if (running_.load()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;

  const int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    log::error("serve", "bind/listen failed",
               {log::Field("port", static_cast<std::int64_t>(port)),
                log::Field("errno", static_cast<std::int64_t>(errno))});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  pool_ = std::make_unique<ThreadPool>(config_.worker_threads);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  log::info("serve", "listening",
            {log::Field("port", static_cast<std::int64_t>(port_)),
             log::Field("workers", static_cast<std::int64_t>(config_.worker_threads))});
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept loop with shutdown() but keep the fd alive until the
  // thread is joined: closing here would race the concurrent accept()
  // (and could hand a recycled fd number to a blocked accept).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Drain in-flight connections for the configured budget, then wake any
  // stragglers out of blocked recv/send via shutdown(). The fd itself is
  // closed only by the owning worker, so there is no reuse race.
  {
    MutexLock lock(conn_mutex_);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
    while (!active_fds_.empty()) {
      if (!drain_cv_.wait_until(conn_mutex_, deadline)) break;  // drain budget spent
    }
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Queued-but-unstarted connections observe running_ == false and shed
  // immediately, so joining the pool is bounded.
  pool_.reset();
  log::info("serve", "stopped",
            {log::Field("handled", static_cast<std::int64_t>(stats_.handled.load())),
             log::Field("rejected", static_cast<std::int64_t>(stats_.rejected.load()))});
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    set_socket_timeout(fd, SO_RCVTIMEO, config_.recv_timeout_ms);
    set_socket_timeout(fd, SO_SNDTIMEO, config_.send_timeout_ms);

    std::function<void()> task = [this, fd] { handle_connection(fd); };
    if (!pool_->try_submit(task, config_.max_pending)) {
      // Executor saturated: shed load here instead of queueing without
      // bound. Never block the accept path on worker progress.
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      log::warn("serve", "shedding connection: executor saturated",
                {log::Field("pending", static_cast<std::int64_t>(pool_->pending()))});
      send_response(fd, HttpResponse::json(503, R"({"error":"server overloaded"})"));
      ::close(fd);
    }
  }
}

void HttpServer::handle_connection(int fd) {
  bool admitted = false;
  {
    MutexLock lock(conn_mutex_);
    if (running_.load()) {
      active_fds_.insert(fd);
      admitted = true;
    }
  }
  if (!admitted) {
    // stop() began while this connection sat in the pending queue. The
    // 503 is sent outside the lock so a stalled client can't pin it.
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    send_response(fd, HttpResponse::json(503, R"({"error":"server shutting down"})"));
    ::close(fd);
    return;
  }

  // The trace covers the whole request lifetime including receive time,
  // so a client that drips bytes shows up as a slow trace, not a fast
  // handler.
  obs::TraceContext trace = tracer_.make_trace();
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_deadline_ms);
  std::string received;
  char buffer[8192];
  std::size_t expected = 0;
  enum class Outcome { kComplete, kTimeout, kTooLarge, kBadFraming, kClientGone };
  Outcome outcome = Outcome::kComplete;

  for (;;) {
    if (Clock::now() >= deadline) {
      outcome = Outcome::kTimeout;
      break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK: SO_RCVTIMEO expired with the client idle.
      outcome = (errno == EAGAIN || errno == EWOULDBLOCK) ? Outcome::kTimeout
                                                          : Outcome::kClientGone;
      break;
    }
    if (n == 0) {  // orderly close (or stop() shut the socket down)
      outcome = Outcome::kClientGone;
      break;
    }
    received.append(buffer, static_cast<std::size_t>(n));
    if (received.size() > config_.max_request_bytes) {
      outcome = Outcome::kTooLarge;
      break;
    }
    if (expected == 0) {
      expected = expected_request_length(received);
      if (expected == kInvalidRequestFraming) {
        outcome = Outcome::kBadFraming;
        break;
      }
    }
    if (expected != 0 && received.size() >= expected) break;
  }

  switch (outcome) {
    case Outcome::kComplete: {
      std::optional<HttpRequest> request;
      {
        obs::Span parse_span(&trace, obs::Stage::kParse);
        request = parse_http_request(received);
      }
      if (request.has_value()) {
        const auto id_it = request->headers.find("x-request-id");
        if (id_it != request->headers.end()) trace.adopt_id(id_it->second);
        std::string wire;
        int status = 0;
        {
          obs::TraceScope scope(&trace);
          const HttpResponse response = dispatch(*request);
          status = response.status;
          obs::Span serialize_span(&trace, obs::Stage::kSerialize);
          wire = serialize_http_response(response);
        }
        if (send_all(fd, wire)) {
          stats_.handled.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
        }
        tracer_.finish(trace, status,
                       trace.route().empty() ? "(unknown)" : trace.route());
      } else {
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
        send_response(fd, HttpResponse::json(400, R"({"error":"malformed request"})"));
        tracer_.finish(trace, 400, "(malformed)");
      }
      break;
    }
    case Outcome::kTimeout:
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      send_response(fd, HttpResponse::json(408, R"({"error":"request timeout"})"));
      tracer_.finish(trace, 408, "(timeout)");
      break;
    case Outcome::kTooLarge:
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      send_response(fd, HttpResponse::json(413, R"({"error":"request too large"})"));
      tracer_.finish(trace, 413, "(too_large)");
      break;
    case Outcome::kBadFraming:
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      send_response(fd,
                    HttpResponse::json(400, R"({"error":"invalid content-length"})"));
      tracer_.finish(trace, 400, "(bad_framing)");
      break;
    case Outcome::kClientGone:
      if (!received.empty()) {
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
        // 499 (client closed request): retained by the flight recorder
        // like any other errored request.
        tracer_.finish(trace, 499, "(client_gone)");
      }
      break;
  }

  {
    MutexLock lock(conn_mutex_);
    active_fds_.erase(fd);
    if (active_fds_.empty()) drain_cv_.notify_all();
  }
  ::close(fd);
}

bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>& extra_headers,
                  HttpClientResponse& response_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "Content-Type: application/json\r\n";
  for (const auto& [key, value] : extra_headers) {
    request += key;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }

  std::string received;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Parse the status line, headers and body.
  const std::size_t line_end = received.find("\r\n");
  const std::size_t head_end = received.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos) return false;
  const std::string status_line = received.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return false;
  // atoi() has no error reporting (cert-err34-c); parse the 3-digit code
  // strictly and fail on anything non-numeric.
  std::string_view code = std::string_view(status_line).substr(sp + 1);
  const std::size_t code_end = code.find(' ');
  if (code_end != std::string_view::npos) code = code.substr(0, code_end);
  std::int64_t status = 0;
  if (!parse_i64(code, status) || status < 100 || status > 599) return false;
  response_out.status = static_cast<int>(status);
  response_out.body = received.substr(head_end + 4);

  response_out.headers.clear();
  std::size_t cursor = line_end + 2;
  while (cursor < head_end) {
    std::size_t next = received.find("\r\n", cursor);
    if (next == std::string::npos || next > head_end) next = head_end;
    const std::string_view line = std::string_view(received).substr(cursor, next - cursor);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      response_out.headers.emplace(to_lower(trim(line.substr(0, colon))),
                                   std::string(trim(line.substr(colon + 1))));
    }
    cursor = next + 2;
  }
  return true;
}

bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out) {
  HttpClientResponse response;
  if (!http_request(port, method, path, body, {}, response)) return false;
  status_out = response.status;
  body_out = std::move(response.body);
  return true;
}

}  // namespace mcb
