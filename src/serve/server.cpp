#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <mutex>

namespace mcb {
namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024 * 1024;

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       HttpHandler handler) {
  routes_[{method, path}] = std::move(handler);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it != routes_.end()) {
    try {
      return it->second(request);
    } catch (const std::exception& e) {
      return HttpResponse::json(500, std::string(R"({"error":")") + e.what() + "\"}");
    }
  }
  // Distinguish 404 from 405 for better API ergonomics.
  for (const auto& [key, handler] : routes_) {
    (void)handler;
    if (key.second == request.path) {
      return HttpResponse::json(405, R"({"error":"method not allowed"})");
    }
  }
  return HttpResponse::json(404, R"({"error":"not found"})");
}

bool HttpServer::start(int port) {
  if (running_.load()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;

  const int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(workers_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    std::lock_guard lock(workers_mutex_);
    // Reap finished workers opportunistically to bound the vector.
    if (workers_.size() > 64) {
      for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
      }
      workers_.clear();
    }
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  std::string received;
  char buffer[8192];
  std::size_t expected = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<std::size_t>(n));
    if (received.size() > kMaxRequestBytes) {
      send_all(fd, serialize_http_response(
                       HttpResponse::json(400, R"({"error":"request too large"})")));
      ::close(fd);
      return;
    }
    if (expected == 0) expected = expected_request_length(received);
    if (expected != 0 && received.size() >= expected) break;
  }

  const auto request = parse_http_request(received);
  const HttpResponse response =
      request.has_value()
          ? dispatch(*request)
          : HttpResponse::json(400, R"({"error":"malformed request"})");
  send_all(fd, serialize_http_response(response));
  ::close(fd);
}

bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }

  std::string received;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Parse the status line and body.
  const std::size_t line_end = received.find("\r\n");
  const std::size_t head_end = received.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos) return false;
  const std::string status_line = received.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return false;
  status_out = std::atoi(status_line.c_str() + sp + 1);
  body_out = received.substr(head_end + 4);
  return true;
}

}  // namespace mcb
