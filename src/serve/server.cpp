#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>

#include "obs/log.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"

namespace mcb {
namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data tags for the two non-connection fds. Real connections
// carry their Connection* in data.ptr; heap pointers are never 1 or 2.
constexpr std::uint64_t kListenerTag = 1;
constexpr std::uint64_t kWakeTag = 2;

constexpr int kEpollBatch = 256;
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::uint64_t kWheelTickMs = 10;
constexpr std::size_t kWheelSlots = 256;
constexpr std::uint64_t kNoDeadline = static_cast<std::uint64_t>(-1);

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Json latency_json(const Histogram& log10_us, double sum_us, double max_us,
                  std::uint64_t count) {
  Json out = Json::object();
  out.set("count", static_cast<std::int64_t>(count));
  out.set("mean", count > 0 ? sum_us / static_cast<double>(count) : 0.0);
  out.set("max", max_us);
  out.set("p50", std::pow(10.0, log10_us.quantile(0.50)));
  out.set("p90", std::pow(10.0, log10_us.quantile(0.90)));
  out.set("p99", std::pow(10.0, log10_us.quantile(0.99)));
  return out;
}

}  // namespace

void ServerStats::record_route(const std::string& route_key, int status,
                               double seconds) {
  const double us = std::max(seconds * 1e6, 0.0);
  MutexLock lock(mutex_);
  RouteStats& rs = routes_[route_key];
  ++rs.count;
  if (status >= 500) {
    ++rs.status_5xx;
  } else if (status >= 400) {
    ++rs.status_4xx;
  } else if (status >= 200 && status < 300) {
    ++rs.status_2xx;
  } else {
    // 1xx/3xx (and anything below 100): count them visibly instead of
    // inflating the 2xx success rate.
    ++rs.status_other;
  }
  rs.sum_us += us;
  rs.max_us = std::max(rs.max_us, us);
  rs.log10_us.add(std::log10(std::max(us, 1.0)));
}

Json ServerStats::to_json() const {
  Json out = Json::object();
  out.set("accepted", static_cast<std::int64_t>(accepted.load()));
  out.set("handled", static_cast<std::int64_t>(handled.load()));
  out.set("rejected", static_cast<std::int64_t>(rejected.load()));
  out.set("timed_out", static_cast<std::int64_t>(timed_out.load()));
  out.set("malformed", static_cast<std::int64_t>(malformed.load()));

  Json routes = Json::object();
  {
    MutexLock lock(mutex_);
    for (const auto& [key, rs] : routes_) {
      Json entry = Json::object();
      entry.set("count", static_cast<std::int64_t>(rs.count));
      Json status = Json::object();
      status.set("2xx", static_cast<std::int64_t>(rs.status_2xx));
      status.set("4xx", static_cast<std::int64_t>(rs.status_4xx));
      status.set("5xx", static_cast<std::int64_t>(rs.status_5xx));
      status.set("other", static_cast<std::int64_t>(rs.status_other));
      entry.set("status", status);
      entry.set("latency_us", latency_json(rs.log10_us, rs.sum_us, rs.max_us, rs.count));
      routes.set(key, entry);
    }
  }
  out.set("routes", routes);
  return out;
}

void ServerStats::collect_metrics(std::vector<obs::MetricFamily>& out) const {
  {
    obs::MetricFamily conns;
    conns.name = "mcb_http_connections_total";
    conns.help = "Connection outcomes by event (accepted, handled, rejected, "
                 "timed_out, malformed).";
    conns.type = obs::MetricType::kCounter;
    const std::pair<const char*, std::uint64_t> events[] = {
        {"accepted", accepted.load()},   {"handled", handled.load()},
        {"rejected", rejected.load()},   {"timed_out", timed_out.load()},
        {"malformed", malformed.load()},
    };
    for (const auto& [event, value] : events) {
      conns.points.push_back(
          obs::scalar_point({{"event", event}}, static_cast<double>(value)));
    }
    out.push_back(std::move(conns));
  }

  obs::MetricFamily requests;
  requests.name = "mcb_http_requests_total";
  requests.help = "Dispatched requests by route and status class.";
  requests.type = obs::MetricType::kCounter;

  obs::MetricFamily durations;
  durations.name = "mcb_http_request_duration_seconds";
  durations.help = "Handler latency by route.";
  durations.type = obs::MetricType::kHistogram;

  MutexLock lock(mutex_);
  for (const auto& [key, rs] : routes_) {
    const std::pair<const char*, std::uint64_t> classes[] = {
        {"2xx", rs.status_2xx}, {"4xx", rs.status_4xx},
        {"5xx", rs.status_5xx}, {"other", rs.status_other},
    };
    for (const auto& [cls, value] : classes) {
      if (value == 0) continue;  // keep the exposition sparse
      requests.points.push_back(obs::scalar_point(
          {{"route", key}, {"class", cls}}, static_cast<double>(value)));
    }

    // Re-express the log10(us) histogram as cumulative seconds buckets:
    // bin upper edges 10^hi us become le bounds 10^hi * 1e-6 s.
    obs::MetricPoint point;
    point.labels = {{"route", key}};
    std::uint64_t running = 0;
    for (std::size_t bin = 0; bin < rs.log10_us.bins(); ++bin) {
      running += rs.log10_us.bin_count(bin);
      point.bounds.push_back(std::pow(10.0, rs.log10_us.bin_hi(bin)) * 1e-6);
      point.cumulative.push_back(running);
    }
    point.count = rs.count;
    point.sum = rs.sum_us * 1e-6;
    durations.points.push_back(std::move(point));
  }
  out.push_back(std::move(requests));
  out.push_back(std::move(durations));
}

/// Per-connection state machine, owned and mutated exclusively by the
/// reactor thread (the conns_ table is mutex-guarded only because other
/// threads snapshot its size). `inbuf`/`outbuf` are reused across
/// keep-alive requests: erase/clear keep their capacity, so a warm
/// connection stops allocating.
struct HttpServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;      ///< wheel/completion key; never reused
  std::string inbuf;         ///< unconsumed request bytes
  std::string outbuf;        ///< unflushed response bytes
  std::size_t out_off = 0;   ///< flushed prefix of outbuf
  /// outbuf end-offsets that complete a dispatched response; `handled`
  /// increments when the flush cursor passes a mark, preserving the
  /// "responses fully written" meaning under pipelining.
  std::vector<std::size_t> handled_marks;
  std::size_t marks_done = 0;
  bool receiving = false;        ///< first byte of the current request seen
  bool in_handler = false;       ///< one request running on the pool
  bool peer_half_closed = false; ///< read side saw EOF (client shutdown(WR))
  bool want_close = false;       ///< close once outbuf drains
  bool want_write = false;       ///< EPOLLOUT currently registered
  bool read_paused = false;      ///< drain stopped before EAGAIN (buffer cap)
  bool closed = false;           ///< fd closed; object lingers to batch end
  bool timer_armed = false;      ///< one live wheel entry for this id
  std::uint64_t requests_done = 0;
  std::uint64_t last_activity_ms = 0;  ///< last byte received / response flushed
  std::uint64_t request_start_ms = 0;  ///< first byte of the current request
  std::uint64_t write_stall_ms = 0;    ///< 0 = not write-stalled
  /// Covers receive time of the current request; moved into the
  /// PendingRequest at dispatch so the handler owns it and the
  /// Connection can die while the handler runs.
  std::optional<obs::TraceContext> trace;
};

HttpServer::HttpServer(ServerConfig config)
    : config_(config), wheel_(kWheelTickMs, kWheelSlots) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_connections == 0) config_.max_connections = 1;
}

// NOLINTNEXTLINE(bugprone-exception-escape) — stop() joins the reactor and
// worker threads and may throw system_error on corrupt thread state;
// terminating there is better than leaking joinable threads.
HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       HttpHandler handler) {
  routes_[{method, path}] = std::move(handler);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  // The socket path installs the request's trace before calling in; the
  // socketless path (unit tests, in-process clients) gets a local trace
  // here so spans and X-Request-Id echo behave identically.
  obs::TraceContext* trace = obs::current_trace();
  std::optional<obs::TraceContext> local_trace;
  std::optional<obs::TraceScope> local_scope;
  if (trace == nullptr) {
    const auto id_it = request.headers.find("x-request-id");
    local_trace.emplace(tracer_.make_trace(
        id_it != request.headers.end() ? std::string_view(id_it->second)
                                       : std::string_view{}));
    local_scope.emplace(&*local_trace);
    trace = &*local_trace;
  }

  const auto started = Clock::now();
  decltype(routes_)::const_iterator it;
  HttpResponse response;
  bool matched = false;
  {
    obs::Span route_span(trace, obs::Stage::kRoute);
    it = routes_.find({request.method, request.path});
    matched = it != routes_.end();
    if (!matched) {
      // Distinguish 404 from 405 for better API ergonomics.
      bool path_exists = false;
      for (const auto& [key, handler] : routes_) {
        (void)handler;
        if (key.second == request.path) {
          path_exists = true;
          break;
        }
      }
      response = path_exists
                     ? HttpResponse::json(405, R"({"error":"method not allowed"})")
                     : HttpResponse::json(404, R"({"error":"not found"})");
    }
  }
  if (matched) {
    try {
      response = it->second(request);
    } catch (const std::exception& e) {
      response = HttpResponse::json(
          500, std::string(R"({"error":")") + json_escape(e.what()) + "\"}");
    }
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - started).count();
  const std::string key = matched ? request.method + " " + request.path : "(unmatched)";
  stats_.record_route(key, response.status, seconds);
  trace->set_route(key);
  response.headers.emplace_back("X-Request-Id", trace->id());
  if (local_trace.has_value()) {
    local_scope.reset();
    tracer_.finish(*local_trace, response.status, key);
  }
  return response;
}

Json HttpServer::stats_json() const {
  const Json stats = stats_.to_json();
  Json server = Json::object();
  for (const auto& [key, value] : stats.as_object()) {
    if (key != "routes") server.set(key, value);
  }
  server.set("active_connections", static_cast<std::int64_t>(active_connections()));
  server.set("worker_threads", static_cast<std::int64_t>(config_.worker_threads));
  server.set("queue_capacity", static_cast<std::int64_t>(config_.max_pending));
  server.set("queue_depth",
             static_cast<std::int64_t>(pool_ != nullptr ? pool_->pending() : 0));
  server.set("listen_backlog", static_cast<std::int64_t>(effective_backlog_));
  server.set("max_connections", static_cast<std::int64_t>(config_.max_connections));
  Json out = Json::object();
  out.set("server", server);
  out.set("routes", stats["routes"]);
  return out;
}

std::size_t HttpServer::active_connections() const {
  MutexLock lock(conn_mutex_);
  return conns_.size();
}

std::uint64_t HttpServer::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - epoch_)
          .count());
}

HttpServer::Connection* HttpServer::find_connection(std::uint64_t id) {
  // Returning the raw pointer after unlock is safe: only the reactor
  // thread destroys connections, and it is the only caller.
  // mcb-lint: suppress(R18: bounded critical section — one hash lookup) mcb-lint: suppress(R19: bounded critical section — one hash lookup)
  MutexLock lock(conn_mutex_);
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void HttpServer::wake_reactor() const {
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void HttpServer::consume_wake() const {
  std::uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = ::read(wake_fd_, &value, sizeof(value));
}

bool HttpServer::start(int port) {
  if (running_.load()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;

  const int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));

  const int somax = somaxconn();
  const int backlog = std::max(config_.listen_backlog, 1);
  effective_backlog_ = std::min(backlog, somax);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, backlog) != 0) {
    log::error("serve", "bind/listen failed",
               {log::Field("port", static_cast<std::int64_t>(port)),
                log::Field("errno", static_cast<std::int64_t>(errno))});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    epoll_fd_ = wake_fd_ = listen_fd_ = -1;
    return false;
  }
  epoll_event lev{};
  lev.events = EPOLLIN | EPOLLET;
  lev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev);
  epoll_event wev{};
  wev.events = EPOLLIN;  // level-triggered: consume_wake clears it
  wev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wev);

  epoch_ = Clock::now();
  wheel_ = TimerWheel(kWheelTickMs, kWheelSlots);
  draining_ = false;
  drain_deadline_ms_ = 0;
  {
    MutexLock lock(completion_mutex_);
    completions_.clear();
  }
  pool_ = std::make_unique<ThreadPool>(config_.worker_threads);
  running_.store(true);
  reactor_thread_ = std::thread([this] { reactor_loop(); });
  log::info("serve", "listening",
            {log::Field("port", static_cast<std::int64_t>(port_)),
             log::Field("workers", static_cast<std::int64_t>(config_.worker_threads)),
             log::Field("backlog", static_cast<std::int64_t>(backlog)),
             log::Field("effective_backlog",
                        static_cast<std::int64_t>(effective_backlog_)),
             log::Field("somaxconn", static_cast<std::int64_t>(somax))});
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // The reactor observes running_ == false, stops accepting, closes idle
  // connections and drains the rest within the drain budget; joining it
  // is bounded by that budget plus the longest in-flight handler.
  wake_reactor();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  // Handler workers may still be finishing; their completions are for
  // connections that no longer exist and are simply never read.
  pool_.reset();
  {
    MutexLock lock(completion_mutex_);
    completions_.clear();
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (listen_fd_ >= 0) {  // normally closed by the reactor's drain phase
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  log::info("serve", "stopped",
            {log::Field("handled", static_cast<std::int64_t>(stats_.handled.load())),
             log::Field("rejected", static_cast<std::int64_t>(stats_.rejected.load()))});
}

void HttpServer::reactor_loop() {
  std::vector<epoll_event> events(kEpollBatch);
  for (;;) {
    if (!running_.load(std::memory_order_acquire) && !draining_) begin_drain();
    if (draining_) {
      std::size_t open = 0;
      {
        MutexLock lock(conn_mutex_);
        open = conns_.size();
      }
      if (open == 0) break;
      if (now_ms() >= drain_deadline_ms_) {
        force_close_all();
        break;
      }
    }
    int timeout_ms = static_cast<int>(wheel_.tick_ms());
    if (!draining_ && wheel_.armed() == 0) {
      std::size_t open = 0;
      {
        MutexLock lock(conn_mutex_);
        open = conns_.size();
      }
      if (open == 0) timeout_ms = 200;  // idle: nothing to expire
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      log::error("serve", "epoll_wait failed",
                 {log::Field("errno", static_cast<std::int64_t>(errno))});
      break;
    }
    reactor_tick(events.data(), n > 0 ? n : 0);
  }
}

// The reactor's per-iteration body: fan events out to the connection
// state machines, absorb handler completions, expire timers. Hot by
// construction — runs once per epoll batch at full load — so it is
// MCB_HOT_PATH: no allocation, locks or blocking calls here; those live
// in the leaf helpers where they are bounded and justified.
MCB_HOT_PATH
void HttpServer::reactor_tick(const epoll_event* events, int n_events) {
  for (int i = 0; i < n_events; ++i) {
    const epoll_event& ev = events[i];
    if (ev.data.u64 == kListenerTag) {
      if (!draining_) handle_accepts();
    } else if (ev.data.u64 == kWakeTag) {
      consume_wake();
    } else {
      handle_event(static_cast<Connection*>(ev.data.ptr), ev.events);
    }
  }
  drain_completions();
  expire_timers();
  destroy_closed();
}

// Per-connection event dispatch: resume writes first (frees buffer
// space), then pump reads through the state machine. Also MCB_HOT_PATH —
// pure control flow over the Connection, no allocation or locking.
MCB_HOT_PATH
void HttpServer::handle_event(Connection* conn, std::uint32_t events) {
  if (conn == nullptr || conn->closed) return;
  if ((events & EPOLLERR) != 0) {
    finish_abandoned(conn);
    close_connection(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) flush_output(conn);
  if (conn->closed) return;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) pump_input(conn);
}

// Drain-then-process until the socket is dry (edge-triggered epoll will
// not re-notify for bytes we left behind) or a handler has the
// connection and reading is paused.
void HttpServer::pump_input(Connection* conn) {
  do {
    conn->read_paused = false;
    drain_input(conn);
    if (conn->closed) return;
    process_inbuf(conn);
    if (conn->closed) return;
  } while (conn->read_paused && !conn->in_handler);
}

void HttpServer::drain_input(Connection* conn) {
  char buffer[kReadChunk];
  // Cap buffered-but-unprocessed bytes: an abusive client pipelining
  // into a slow handler parks here instead of growing inbuf unboundedly;
  // reading resumes (read_paused) once the state machine catches up.
  const std::size_t cap = config_.max_request_bytes + sizeof(buffer);
  for (;;) {
    if (conn->inbuf.size() >= cap) {
      conn->read_paused = true;
      return;
    }
    // mcb-lint: suppress(R18: non-blocking fd; EAGAIN ends the loop) mcb-lint: suppress(R19: non-blocking fd; EAGAIN ends the loop)
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      finish_abandoned(conn);
      close_connection(conn);
      return;
    }
    if (n == 0) {  // orderly shutdown of the client's write side
      conn->peer_half_closed = true;
      return;
    }
    // mcb-lint: suppress(R18: inbuf is capped at max_request_bytes and reuses capacity across requests)
    conn->inbuf.append(buffer, static_cast<std::size_t>(n));
    conn->last_activity_ms = now_ms();
  }
}

void HttpServer::process_inbuf(Connection* conn) {
  for (;;) {
    if (conn->closed || conn->in_handler || conn->want_close) return;
    if (conn->inbuf.empty()) {
      if (conn->peer_half_closed) {
        // Client finished sending and everything is answered: close
        // (half-close contract: pending responses still go out first).
        conn->want_close = true;
        if (conn->out_off >= conn->outbuf.size()) close_connection(conn);
      }
      return;
    }
    if (!conn->receiving) {
      conn->receiving = true;
      conn->request_start_ms = now_ms();
      conn->last_activity_ms = conn->request_start_ms;
      // The trace covers the whole request lifetime including receive
      // time, so a client that drips bytes shows up as a slow trace,
      // not a fast handler. (The first request's trace is created at
      // accept so a silent connection is traceable too.)
      // mcb-lint: suppress(R18: optional emplace constructs in place — no container involved)
      if (!conn->trace.has_value()) conn->trace.emplace(tracer_.make_trace());
      arm_timer(conn);
    }
    const std::size_t expected = expected_request_length(conn->inbuf);
    if (expected == kInvalidRequestFraming) {
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      fail_request(conn,
                   HttpResponse::json(400, R"({"error":"invalid content-length"})"),
                   "(bad_framing)");
      return;
    }
    if (expected != 0 && conn->inbuf.size() >= expected) {
      if (expected > config_.max_request_bytes) {
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
        fail_request(conn, HttpResponse::json(413, R"({"error":"request too large"})"),
                     "(too_large)");
        return;
      }
      dispatch_request(conn, expected);
      continue;  // further pipelined requests wait for the completion
    }
    // Request still incomplete.
    if (conn->inbuf.size() > config_.max_request_bytes) {
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      fail_request(conn, HttpResponse::json(413, R"({"error":"request too large"})"),
                   "(too_large)");
      return;
    }
    if (conn->peer_half_closed) {  // EOF mid-request: it can never complete
      finish_abandoned(conn);
      close_connection(conn);
      return;
    }
    return;
  }
}

void HttpServer::dispatch_request(Connection* conn, std::size_t wire_len) {
  // mcb-lint: suppress(R18: one pending-record allocation per request — the price of reactor/worker isolation)
  auto pending = std::make_shared<PendingRequest>();
  pending->conn_id = conn->id;
  // mcb-lint: suppress(R18: copies the wire bytes into the worker-owned buffer; bounded by max_request_bytes)
  pending->raw.assign(conn->inbuf, 0, wire_len);
  pending->trace = std::move(*conn->trace);
  conn->trace.reset();
  conn->inbuf.erase(0, wire_len);  // keeps capacity: buffer reuse across requests
  conn->receiving = false;

  if (draining_) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    tracer_.finish(pending->trace, 503, "(shed)");
    conn->want_close = true;
    enqueue_response(conn,
                     serialize_http_response(
                         HttpResponse::json(503, R"({"error":"server shutting down"})"),
                         false),
                     false);
    return;
  }

  std::function<void()> task = [this, pending] { run_handler(*pending); };
  if (!pool_->try_submit(task, config_.max_pending)) {
    // Handler pool saturated: shed load here instead of queueing without
    // bound. The reactor never blocks on worker progress.
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    log::warn("serve", "shedding request: handler pool saturated",
              {log::Field("pending", static_cast<std::int64_t>(pool_->pending()))});
    tracer_.finish(pending->trace, 503, "(shed)");
    conn->want_close = true;
    enqueue_response(conn,
                     serialize_http_response(
                         HttpResponse::json(503, R"({"error":"server overloaded"})"),
                         false),
                     false);
    return;
  }
  conn->in_handler = true;
}

// Runs on a pool worker. Self-contained: owns the raw bytes and the
// trace; talks back to the reactor only through the completion queue.
// Both boundaries below are that fact, spelled for the analyzer:
// try_submit is where work leaves the reactor thread, so nothing from
// here down is reactor- or hot-path-constrained.
MCB_REACTOR_BOUNDARY MCB_HOT_PATH_BOUNDARY
void HttpServer::run_handler(PendingRequest& pending) {
  std::optional<HttpRequest> request;
  {
    obs::Span parse_span(&pending.trace, obs::Stage::kParse);
    request = parse_http_request(pending.raw);
  }
  Completion completion;
  completion.conn_id = pending.conn_id;
  if (request.has_value()) {
    const auto id_it = request->headers.find("x-request-id");
    if (id_it != request->headers.end()) pending.trace.adopt_id(id_it->second);

    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // Connection header wins either way.
    bool keep_alive = true;
    const std::size_t line_end = pending.raw.find("\r\n");
    if (line_end != std::string::npos &&
        std::string_view(pending.raw).substr(0, line_end).ends_with("HTTP/1.0")) {
      keep_alive = false;
    }
    const auto conn_it = request->headers.find("connection");
    if (conn_it != request->headers.end()) {
      const std::string value = to_lower(conn_it->second);
      if (value.find("close") != std::string::npos) {
        keep_alive = false;
      } else if (value.find("keep-alive") != std::string::npos) {
        keep_alive = true;
      }
    }

    int status = 0;
    {
      obs::TraceScope scope(&pending.trace);
      const HttpResponse response = dispatch(*request);
      status = response.status;
      obs::Span serialize_span(&pending.trace, obs::Stage::kSerialize);
      completion.wire = serialize_http_response(response, keep_alive);
    }
    completion.keep_alive = keep_alive;
    completion.dispatched = true;
    tracer_.finish(pending.trace, status,
                   pending.trace.route().empty() ? "(unknown)" : pending.trace.route());
  } else {
    stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    completion.wire = serialize_http_response(
        HttpResponse::json(400, R"({"error":"malformed request"})"), false);
    completion.keep_alive = false;
    completion.dispatched = false;
    tracer_.finish(pending.trace, 400, "(malformed)");
  }
  {
    MutexLock lock(completion_mutex_);
    completions_.push_back(std::move(completion));
  }
  wake_reactor();
}

void HttpServer::drain_completions() {
  std::vector<Completion> batch;
  {
    // mcb-lint: suppress(R18: lock covers a vector swap only) mcb-lint: suppress(R19: lock covers a vector swap only)
    MutexLock lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    Connection* conn = find_connection(completion.conn_id);
    if (conn == nullptr || conn->closed) continue;  // connection died mid-handler
    conn->in_handler = false;
    ++conn->requests_done;
    if (!completion.keep_alive || draining_) conn->want_close = true;
    enqueue_response(conn, completion.wire, completion.dispatched);
    if (conn->closed || conn->want_close) continue;
    // The next pipelined request may already be buffered, and a paused
    // read must resume now that the state machine caught up.
    if (conn->read_paused) {
      pump_input(conn);
    } else {
      process_inbuf(conn);
    }
    if (!conn->closed) arm_timer(conn);
  }
}

void HttpServer::enqueue_response(Connection* conn, std::string_view wire,
                                  bool count_handled) {
  // mcb-lint: suppress(R18: outbuf retains its capacity once the connection warms up)
  conn->outbuf.append(wire.data(), wire.size());
  // mcb-lint: suppress(R18: handled_marks is bounded by pipelined responses and reuses capacity)
  if (count_handled) conn->handled_marks.push_back(conn->outbuf.size());
  flush_output(conn);
}

void HttpServer::flush_output(Connection* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    // mcb-lint: suppress(R18: non-blocking fd; EAGAIN parks the remainder) mcb-lint: suppress(R19: non-blocking fd; EAGAIN parks the remainder for EPOLLOUT)
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                             conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Partial write: park the rest, resume on EPOLLOUT, and start
        // the write-stall clock (timer wheel replaces SO_SNDTIMEO).
        if (conn->write_stall_ms == 0) conn->write_stall_ms = now_ms();
        update_epoll(conn, true);
        arm_timer(conn);
        return;
      }
      finish_abandoned(conn);
      close_connection(conn);
      return;
    }
    conn->out_off += static_cast<std::size_t>(n);
    while (conn->marks_done < conn->handled_marks.size() &&
           conn->handled_marks[conn->marks_done] <= conn->out_off) {
      stats_.handled.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      ++conn->marks_done;
    }
  }
  conn->outbuf.clear();  // keeps capacity: buffer reuse across requests
  conn->out_off = 0;
  conn->handled_marks.clear();
  conn->marks_done = 0;
  conn->write_stall_ms = 0;
  if (conn->want_write) update_epoll(conn, false);
  if (conn->want_close) {
    close_connection(conn);
    return;
  }
  conn->last_activity_ms = now_ms();
  if (!conn->receiving && !conn->in_handler) arm_timer(conn);  // idle deadline
}

void HttpServer::fail_request(Connection* conn, const HttpResponse& response,
                              const char* route_key) {
  if (conn->trace.has_value()) {
    tracer_.finish(*conn->trace, response.status, route_key);
    conn->trace.reset();
  }
  conn->receiving = false;
  conn->inbuf.clear();
  conn->want_close = true;
  enqueue_response(conn, serialize_http_response(response, false), false);
}

// The client vanished (EOF mid-request, reset, or write failure): close
// out the receive-side trace the way the thread-per-connection server
// classified it — 499 with the "(client_gone)" route when request bytes
// had arrived, silently otherwise.
void HttpServer::finish_abandoned(Connection* conn) {
  if (!conn->trace.has_value()) return;
  if (conn->receiving && !conn->inbuf.empty()) {
    stats_.malformed.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    // 499 (client closed request): retained by the flight recorder like
    // any other errored request.
    tracer_.finish(*conn->trace, 499, "(client_gone)");
  }
  conn->trace.reset();
}

// Teardown runs once per connection, off the per-request path, so the
// hot-path allocation discipline stops here; the map erase justifies
// its own short wait below.
MCB_HOT_PATH_BOUNDARY
void HttpServer::close_connection(Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }
  // mcb-lint: suppress(R19: bounded critical section — one map erase)
  MutexLock lock(conn_mutex_);
  const auto it = conns_.find(conn->id);
  if (it != conns_.end()) {
    // Deferred free: the current epoll batch may still hold this
    // pointer, so the object lives until destroy_closed().
    closed_scratch_.push_back(std::move(it->second));
    conns_.erase(it);
  }
}

void HttpServer::destroy_closed() { closed_scratch_.clear(); }

void HttpServer::update_epoll(Connection* conn, bool want_write) {
  if (conn->want_write == want_write) return;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | (want_write ? EPOLLOUT : 0U);
  ev.data.ptr = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

// Connection setup: the socket options, Connection allocation, map
// insert and trace creation here are paid once per connection and
// amortized across its requests, so the hot-path allocation discipline
// stops at this edge. The reactor-thread waits below each justify
// themselves individually — the boundary does not cover R19.
MCB_HOT_PATH_BOUNDARY
void HttpServer::handle_accepts() {
  for (;;) {
    // mcb-lint: suppress(R19: listen_fd_ is SOCK_NONBLOCK; EAGAIN ends the loop)
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        log::warn("serve", "accept failed: out of file descriptors", {});
      }
      return;  // EAGAIN: backlog drained
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    std::size_t open = 0;
    {
      // mcb-lint: suppress(R19: bounded critical section — a single map size read)
      MutexLock lock(conn_mutex_);
      open = conns_.size();
    }
    if (open >= config_.max_connections) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
      // Best effort: a fresh connection's empty send buffer takes the
      // tiny 503 without blocking.
      const std::string wire = serialize_http_response(
          HttpResponse::json(503, R"({"error":"server overloaded"})"), false);
      // mcb-lint: suppress(R19: fresh non-blocking socket; the 503 is fire-and-forget)
      (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = ++next_conn_id_;
    conn->last_activity_ms = now_ms();
    conn->trace.emplace(tracer_.make_trace());
    Connection* raw = conn.get();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = raw;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    {
      // mcb-lint: suppress(R19: bounded critical section — one map insert)
      MutexLock lock(conn_mutex_);
      conns_.emplace(raw->id, std::move(conn));
    }
    arm_timer(raw);
  }
}

// ------------------------------------------------------------- timers

std::uint64_t HttpServer::connection_deadline(const Connection* conn) const {
  std::uint64_t deadline = kNoDeadline;
  const auto consider = [&deadline](std::uint64_t candidate) {
    deadline = std::min(deadline, candidate);
  };
  if (conn->receiving) {
    if (config_.recv_timeout_ms > 0) {
      consider(conn->last_activity_ms + static_cast<std::uint64_t>(config_.recv_timeout_ms));
    }
    if (config_.request_deadline_ms > 0) {
      consider(conn->request_start_ms +
               static_cast<std::uint64_t>(config_.request_deadline_ms));
    }
  } else if (!conn->in_handler && conn->out_off >= conn->outbuf.size()) {
    // Idle between requests (or silent since accept).
    if (config_.recv_timeout_ms > 0) {
      consider(conn->last_activity_ms + static_cast<std::uint64_t>(config_.recv_timeout_ms));
    }
  }
  if (conn->write_stall_ms != 0 && config_.send_timeout_ms > 0) {
    consider(conn->write_stall_ms + static_cast<std::uint64_t>(config_.send_timeout_ms));
  }
  return deadline;
}

void HttpServer::arm_timer(Connection* conn) {
  if (conn->timer_armed || conn->closed) return;
  const std::uint64_t deadline = connection_deadline(conn);
  if (deadline == kNoDeadline) return;
  const std::uint64_t now = now_ms();
  conn->timer_armed = true;
  wheel_.schedule(conn->id, deadline > now ? deadline - now : 0);
}

// Lazy cancellation: a wheel fire is only a wake-up. Re-derive the real
// deadline from the connection state; re-arm when it moved, act when it
// passed, drop silently when the connection is gone.
void HttpServer::on_timer(std::uint64_t id) {
  Connection* conn = find_connection(id);
  if (conn == nullptr || conn->closed) return;
  conn->timer_armed = false;
  if (conn->in_handler) return;  // completion path re-arms
  const std::uint64_t deadline = connection_deadline(conn);
  if (deadline == kNoDeadline) return;
  const std::uint64_t now = now_ms();
  if (now < deadline) {
    conn->timer_armed = true;
    wheel_.schedule(conn->id, deadline - now);
    return;
  }
  if (conn->write_stall_ms != 0 && config_.send_timeout_ms > 0 &&
      now >= conn->write_stall_ms + static_cast<std::uint64_t>(config_.send_timeout_ms)) {
    // The client stopped reading its response; nothing we can say to it.
    finish_abandoned(conn);
    close_connection(conn);
    return;
  }
  if (conn->receiving || conn->requests_done == 0) {
    // A request in flight (or a connection that never sent one) hit the
    // idle/deadline budget: 408, matching the blocking server.
    stats_.timed_out.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat counter
    fail_request(conn, HttpResponse::json(408, R"({"error":"request timeout"})"),
                 "(timeout)");
    return;
  }
  // Idle keep-alive connection between requests: close silently.
  close_connection(conn);
}

void HttpServer::expire_timers() {
  expired_scratch_.clear();
  wheel_.advance(now_ms(), expired_scratch_);
  for (const std::uint64_t id : expired_scratch_) on_timer(id);
}

// -------------------------------------------------------------- drain

void HttpServer::begin_drain() {
  draining_ = true;
  drain_deadline_ms_ =
      now_ms() + static_cast<std::uint64_t>(std::max(config_.drain_timeout_ms, 0));
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Idle keep-alive connections have nothing to drain; cut them now so
  // the budget is spent on connections with work in flight.
  std::vector<Connection*> open;
  {
    MutexLock lock(conn_mutex_);
    open.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) open.push_back(conn.get());
  }
  for (Connection* conn : open) {
    if (conn->closed) continue;
    if (!conn->in_handler && !conn->receiving && conn->out_off >= conn->outbuf.size()) {
      close_connection(conn);
    }
  }
  destroy_closed();
}

void HttpServer::force_close_all() {
  std::vector<Connection*> open;
  {
    MutexLock lock(conn_mutex_);
    open.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) open.push_back(conn.get());
  }
  for (Connection* conn : open) {
    finish_abandoned(conn);
    close_connection(conn);
  }
  destroy_closed();
}

// ------------------------------------------------------- test client

bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body,
                  const std::vector<std::pair<std::string, std::string>>& extra_headers,
                  HttpClientResponse& response_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "Content-Type: application/json\r\n";
  // This client reads until the server closes, so opt out of keep-alive.
  request += "Connection: close\r\n";
  for (const auto& [key, value] : extra_headers) {
    request += key;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }

  std::string received;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Parse the status line, headers and body.
  const std::size_t line_end = received.find("\r\n");
  const std::size_t head_end = received.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos) return false;
  const std::string status_line = received.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return false;
  // atoi() has no error reporting (cert-err34-c); parse the 3-digit code
  // strictly and fail on anything non-numeric.
  std::string_view code = std::string_view(status_line).substr(sp + 1);
  const std::size_t code_end = code.find(' ');
  if (code_end != std::string_view::npos) code = code.substr(0, code_end);
  std::int64_t status = 0;
  if (!parse_i64(code, status) || status < 100 || status > 599) return false;
  response_out.status = static_cast<int>(status);
  response_out.body = received.substr(head_end + 4);

  response_out.headers.clear();
  std::size_t cursor = line_end + 2;
  while (cursor < head_end) {
    std::size_t next = received.find("\r\n", cursor);
    if (next == std::string::npos || next > head_end) next = head_end;
    const std::string_view line = std::string_view(received).substr(cursor, next - cursor);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      response_out.headers.emplace(to_lower(trim(line.substr(0, colon))),
                                   std::string(trim(line.substr(colon + 1))));
    }
    cursor = next + 2;
  }
  return true;
}

bool http_request(int port, const std::string& method, const std::string& path,
                  const std::string& body, int& status_out, std::string& body_out) {
  HttpClientResponse response;
  if (!http_request(port, method, path, body, {}, response)) return false;
  status_out = response.status;
  body_out = std::move(response.body);
  return true;
}

}  // namespace mcb
