#include "core/workflows.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

std::vector<JobRecord> apply_theta(std::vector<JobRecord> jobs, const ThetaConfig& theta) {
  if (theta.mode == ThetaConfig::Sampling::kAll || theta.theta == 0 ||
      jobs.size() <= theta.theta) {
    return jobs;
  }
  if (theta.mode == ThetaConfig::Sampling::kLatest) {
    // Jobs arrive ordered by end_time; keep the most recent theta.
    jobs.erase(jobs.begin(),
               jobs.begin() + static_cast<std::ptrdiff_t>(jobs.size() - theta.theta));
    return jobs;
  }
  // Uniform random subset, deterministic in the seed.
  Rng rng(theta.seed);
  auto picks = rng.sample_indices(jobs.size(), theta.theta);
  std::sort(picks.begin(), picks.end());  // keep temporal order
  std::vector<JobRecord> out;
  out.reserve(picks.size());
  for (const std::size_t i : picks) out.push_back(std::move(jobs[i]));
  return out;
}

TrainingWorkflow::TrainingWorkflow(const DataFetcher& fetcher,
                                   const Characterizer& characterizer,
                                   const FeatureEncoder& encoder, EncodingCache* cache,
                                   ThreadPool* pool)
    : fetcher_(&fetcher), characterizer_(&characterizer), encoder_(&encoder), cache_(cache),
      pool_(pool) {}

TrainingReport TrainingWorkflow::run(ClassificationModel& model, TimePoint window_start,
                                     TimePoint window_end, const ThetaConfig& theta) const {
  TrainingReport report;
  Stopwatch sw;
  std::vector<JobRecord> jobs =
      fetcher_->fetch(window_start, window_end, JobQuery::TimeField::kEndTime);
  report.fetch_seconds = sw.seconds();
  report.jobs_fetched = jobs.size();

  jobs = apply_theta(std::move(jobs), theta);
  report.jobs_used = jobs.size();
  if (jobs.empty()) return report;

  sw.reset();
  const std::vector<Boundedness> raw_labels =
      characterizer_->generate_labels(jobs, &report.uncharacterizable);
  report.characterize_seconds = sw.seconds();

  std::vector<Label> labels(raw_labels.size());
  std::transform(raw_labels.begin(), raw_labels.end(), labels.begin(),
                 [](Boundedness b) { return to_label(b); });

  const std::uint64_t hits_before = cache_ != nullptr ? cache_->hits() : 0;
  const std::uint64_t misses_before = cache_ != nullptr ? cache_->misses() : 0;
  sw.reset();
  const FeatureMatrix x = encoder_->encode_batch(jobs, cache_, pool_);
  report.encode_seconds = sw.seconds();
  if (cache_ != nullptr) {
    report.cache_hits = cache_->hits() - hits_before;
    report.cache_misses = cache_->misses() - misses_before;
  }

  sw.reset();
  model.training(x.view(), labels, pool_);
  report.train_seconds = sw.seconds();
  return report;
}

TrainingReport TrainingWorkflow::run_baseline(LookupBaseline& baseline,
                                              TimePoint window_start, TimePoint window_end,
                                              const ThetaConfig& theta) const {
  TrainingReport report;
  Stopwatch sw;
  std::vector<JobRecord> jobs =
      fetcher_->fetch(window_start, window_end, JobQuery::TimeField::kEndTime);
  report.fetch_seconds = sw.seconds();
  report.jobs_fetched = jobs.size();

  jobs = apply_theta(std::move(jobs), theta);
  report.jobs_used = jobs.size();
  if (jobs.empty()) return report;

  sw.reset();
  const std::vector<Boundedness> raw_labels =
      characterizer_->generate_labels(jobs, &report.uncharacterizable);
  report.characterize_seconds = sw.seconds();

  std::vector<LookupBaseline::Key> keys;
  keys.reserve(jobs.size());
  std::vector<Label> labels;
  labels.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    keys.push_back({jobs[i].job_name, jobs[i].cores_requested});
    labels.push_back(to_label(raw_labels[i]));
  }

  sw.reset();
  baseline.fit(keys, labels);
  report.train_seconds = sw.seconds();
  return report;
}

InferenceWorkflow::InferenceWorkflow(const DataFetcher& fetcher, const FeatureEncoder& encoder,
                                     EncodingCache* cache, ThreadPool* pool)
    : fetcher_(&fetcher), encoder_(&encoder), cache_(cache), pool_(pool) {}

InferenceReport InferenceWorkflow::run(const ClassificationModel& model, TimePoint start,
                                       TimePoint end) const {
  Stopwatch sw;
  const std::vector<JobRecord> jobs =
      fetcher_->fetch(start, end, JobQuery::TimeField::kSubmitTime);
  InferenceReport report = run_jobs(model, jobs);
  report.fetch_seconds = sw.seconds() - report.encode_seconds - report.predict_seconds;
  return report;
}

InferenceReport InferenceWorkflow::run_jobs(const ClassificationModel& model,
                                            std::span<const JobRecord> jobs) const {
  InferenceReport report;
  report.job_ids.reserve(jobs.size());
  for (const auto& job : jobs) report.job_ids.push_back(job.job_id);
  if (jobs.empty()) return report;

  Stopwatch sw;
  const FeatureMatrix x = encoder_->encode_batch(jobs, cache_, pool_);
  report.encode_seconds = sw.seconds();

  sw.reset();
  report.predictions = model.inference(x.view(), pool_);
  report.predict_seconds = sw.seconds();
  return report;
}

InferenceReport InferenceWorkflow::run_jobs_baseline(const LookupBaseline& baseline,
                                                     std::span<const JobRecord> jobs) const {
  InferenceReport report;
  report.job_ids.reserve(jobs.size());
  std::vector<LookupBaseline::Key> keys;
  keys.reserve(jobs.size());
  for (const auto& job : jobs) {
    report.job_ids.push_back(job.job_id);
    keys.push_back({job.job_name, job.cores_requested});
  }
  if (jobs.empty()) return report;
  Stopwatch sw;
  report.predictions = baseline.predict(keys);
  report.predict_seconds = sw.seconds();
  return report;
}

}  // namespace mcb
