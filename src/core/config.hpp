// Framework configuration: everything a deployment tunes, loadable from
// JSON so MCBound "can be seamlessly configured and deployed in other
// HPC systems" (paper abstract). Unknown JSON keys are rejected to catch
// config typos.
#pragma once

#include <optional>
#include <string>

#include "core/classification_model.hpp"
#include "core/feature_encoder.hpp"
#include "core/workflows.hpp"
#include "roofline/machine_spec.hpp"
#include "util/json.hpp"

namespace mcb {

struct FrameworkConfig {
  MachineSpec machine = fugaku_node_spec();
  std::vector<JobFeature> features = default_feature_set();
  EncoderConfig encoder;

  ModelKind model = ModelKind::kRandomForest;
  KnnConfig knn;
  RandomForestConfig forest;

  int alpha_days = 15;  ///< paper's best RF setting; use 30 for KNN
  int beta_days = 1;
  ThetaConfig theta;

  std::string registry_dir = "mcbound-models";
  int server_port = 8080;

  Json to_json() const;
  static std::optional<FrameworkConfig> from_json(const Json& json, std::string* error = nullptr);
  static std::optional<FrameworkConfig> load_file(const std::string& path,
                                                  std::string* error = nullptr);
  bool save_file(const std::string& path) const;
};

/// Parse a feature name ("user_name", "job_name", ...).
std::optional<JobFeature> parse_job_feature(const std::string& name);

}  // namespace mcb
