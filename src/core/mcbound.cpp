#include "core/mcbound.hpp"

#include "obs/trace.hpp"

namespace mcb {

Framework::Framework(FrameworkConfig config, const JobStore& store, ThreadPool* pool)
    : config_(std::move(config)),
      store_(&store),
      fetcher_(store),
      characterizer_(config_.machine),
      encoder_(config_.features, config_.encoder),
      cache_(encoder_.dim()),
      registry_(config_.registry_dir),
      pool_(pool) {}

ClassificationModel Framework::make_model() const {
  return ClassificationModel(config_.model, config_.knn, config_.forest);
}

TrainingReport Framework::train_now(TimePoint now) {
  const TimePoint window_start =
      now - static_cast<std::int64_t>(config_.alpha_days) * kSecondsPerDay;
  const TrainingWorkflow workflow(fetcher_, characterizer_, encoder_, &cache_, pool_);
  ClassificationModel candidate = make_model();
  const TrainingReport report =
      workflow.run(candidate, window_start, now, config_.theta);
  if (candidate.is_trained()) {
    model_version_ = registry_.save(candidate, model_name());
    model_.emplace(std::move(candidate));
  }
  return report;
}

bool Framework::load_latest_model() {
  auto loaded = registry_.load(config_.model, model_name());
  if (!loaded.has_value() || !loaded->is_trained()) return false;
  model_version_ = registry_.latest_version(model_name());
  model_.emplace(std::move(*loaded));
  return true;
}

std::optional<Boundedness> Framework::predict_job(const JobRecord& job) const {
  if (!has_model()) return std::nullopt;
  const InferenceWorkflow workflow(fetcher_, encoder_, &cache_, pool_);
  const InferenceReport report = workflow.run_jobs(*model_, {&job, 1});
  if (report.predictions.empty()) return std::nullopt;
  return to_boundedness(report.predictions.front());
}

std::vector<Label> Framework::predict_batch(std::span<const JobRecord> jobs,
                                            ShardedEmbeddingCache* text_cache) const {
  if (!has_model() || jobs.empty()) return {};
  FeatureMatrix x;
  if (text_cache != nullptr) {
    // encode_batch_cached opens its own kCacheLookup/kEncode spans.
    x = encoder_.encode_batch_cached(jobs, *text_cache, pool_);
  } else {
    obs::Span encode_span(obs::Stage::kEncode);
    x = encoder_.encode_batch(jobs, nullptr, pool_);
  }
  obs::Span classify_span(obs::Stage::kClassify);
  return model_->inference(x.view(), pool_);
}

InferenceReport Framework::predict_range(TimePoint start, TimePoint end) const {
  if (!has_model()) return {};
  const InferenceWorkflow workflow(fetcher_, encoder_, &cache_, pool_);
  return workflow.run(*model_, start, end);
}

}  // namespace mcb
