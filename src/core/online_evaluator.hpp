// Online prediction-algorithm evaluator (paper §V-B): simulates the
// deployed framework over a test period — retrain every beta days on the
// trailing alpha-day window (or the growing alpha-plus window), predict
// every job submitted until the next retrain, and score all predictions
// against the Roofline ground truth at the end (the paper's `evaluate`
// script).
#pragma once

#include <functional>
#include <optional>

#include "core/workflows.hpp"
#include "data/job_store.hpp"
#include "ml/metrics.hpp"
#include "util/stats.hpp"

namespace mcb {

struct OnlineEvalConfig {
  int alpha_days = 15;        ///< trailing training-window length
  int beta_days = 1;          ///< retraining period
  bool growing_window = false;  ///< alpha-plus: never forget old data
  ThetaConfig theta;

  TimePoint data_start = timepoint_from_ymd(2023, 12, 1);
  TimePoint test_start = timepoint_from_ymd(2024, 2, 1);
  TimePoint test_end = timepoint_from_ymd(2024, 3, 1);
};

struct OnlineEvalResult {
  ConfusionMatrix confusion{kNumBoundednessClasses};
  std::size_t retrains = 0;
  std::size_t predictions = 0;
  std::size_t skipped_windows = 0;  ///< retrain points with no training data

  OnlineStats train_seconds;           ///< per retrain (model fit only)
  OnlineStats train_set_size;          ///< jobs per retrain
  OnlineStats inference_seconds_per_job;  ///< encode + predict, per job
  OnlineStats encode_seconds_per_job;
  double total_seconds = 0.0;

  double f1_macro() const { return confusion.f1_macro(); }
};

class OnlineEvaluator {
 public:
  /// The evaluator owns nothing; all collaborators must outlive it.
  OnlineEvaluator(const JobStore& store, const Characterizer& characterizer,
                  const FeatureEncoder& encoder, ThreadPool* pool = nullptr);

  /// Run the day-by-day simulation for a model factory. A fresh model is
  /// built per retrain (matching the paper's full-retrain semantics).
  OnlineEvalResult evaluate(const std::function<ClassificationModel()>& make_model,
                            const OnlineEvalConfig& config) const;

  /// Same loop for the (job name, #cores) lookup baseline.
  OnlineEvalResult evaluate_baseline(const OnlineEvalConfig& config) const;

 private:
  template <typename TrainFn, typename PredictFn>
  OnlineEvalResult run_loop(const OnlineEvalConfig& config, TrainFn&& train,
                            PredictFn&& predict) const;

  const JobStore* store_;
  const Characterizer* characterizer_;
  const FeatureEncoder* encoder_;
  ThreadPool* pool_;
};

}  // namespace mcb
