// Feature Encoder (paper §III-B): selects a subset of submission-time
// job features, joins their values into a comma-separated string, and
// encodes that string into a fixed-size float vector.
//
// The default feature set is the paper's augmented set for Fugaku
// (§V-A): user name, job name, #cores requested, #nodes requested,
// environment, plus frequency requested.
//
// Encodings are content-addressed by job id in an EncodingCache so that
// retraining re-uses the vectors computed by earlier Training/Inference
// workflow triggers (paper §V-A: "we save the job characterizations and
// encodings of every trigger ... to avoid redundant computations").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/job_record.hpp"
#include "ml/dataset.hpp"
#include "text/embedding_cache.hpp"
#include "text/sentence_encoder.hpp"

namespace mcb {

class ThreadPool;

enum class JobFeature : std::uint8_t {
  kUserName,
  kJobName,
  kCoresRequested,
  kNodesRequested,
  kEnvironment,
  kFrequency,
};

const char* job_feature_name(JobFeature feature) noexcept;

/// The paper's augmented feature set for Fugaku.
std::vector<JobFeature> default_feature_set();

/// Reusable job_id -> embedding store shared by the workflows.
class EncodingCache {
 public:
  explicit EncodingCache(std::size_t dim) : dim_(dim) {}

  std::size_t dim() const noexcept { return dim_; }
  std::size_t size() const noexcept { return index_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Returns the cached row or nullptr; counts a hit/miss.
  const float* lookup(std::uint64_t job_id) noexcept;
  void store(std::uint64_t job_id, std::span<const float> row);
  void clear();

 private:
  std::size_t dim_;
  std::vector<float> rows_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class FeatureEncoder {
 public:
  explicit FeatureEncoder(std::vector<JobFeature> features = default_feature_set(),
                          EncoderConfig encoder_config = {});

  std::size_t dim() const noexcept { return encoder_.dim(); }
  const std::vector<JobFeature>& features() const noexcept { return features_; }
  const SentenceEncoder& sentence_encoder() const noexcept { return encoder_; }

  /// The comma-separated feature string fed to the sentence encoder.
  std::string feature_string(const JobRecord& job) const;

  /// Encode one job.
  std::vector<float> encode(const JobRecord& job) const;

  /// Encode a batch into a row-major matrix; when `cache` is non-null,
  /// hits are copied from the cache and misses are computed and stored.
  FeatureMatrix encode_batch(std::span<const JobRecord> jobs, EncodingCache* cache = nullptr,
                             ThreadPool* pool = nullptr) const;

  /// Encode a batch through the canonical-text LRU cache (serving fast
  /// path): hits are copied under the shard lock, misses are encoded
  /// (optionally in parallel) and inserted. Unlike the job-id-keyed
  /// EncodingCache above, this deduplicates by *content*, so recurring
  /// job names hit even across distinct job ids.
  FeatureMatrix encode_batch_cached(std::span<const JobRecord> jobs,
                                    ShardedEmbeddingCache& cache,
                                    ThreadPool* pool = nullptr) const;

 private:
  std::vector<JobFeature> features_;
  SentenceEncoder encoder_;
};

}  // namespace mcb
