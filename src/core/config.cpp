#include "core/config.hpp"

#include <fstream>
#include <sstream>

namespace mcb {

std::optional<JobFeature> parse_job_feature(const std::string& name) {
  if (name == "user_name") return JobFeature::kUserName;
  if (name == "job_name") return JobFeature::kJobName;
  if (name == "cores_requested") return JobFeature::kCoresRequested;
  if (name == "nodes_requested") return JobFeature::kNodesRequested;
  if (name == "environment") return JobFeature::kEnvironment;
  if (name == "frequency") return JobFeature::kFrequency;
  return std::nullopt;
}

Json FrameworkConfig::to_json() const {
  Json machine_json = Json::object();
  machine_json.set("name", machine.name);
  machine_json.set("peak_gflops", machine.peak_gflops);
  machine_json.set("peak_bandwidth_gbs", machine.peak_bandwidth_gbs);

  Json features_json = Json::array();
  for (const JobFeature f : features) features_json.push_back(job_feature_name(f));

  Json encoder_json = Json::object();
  encoder_json.set("dim", static_cast<std::int64_t>(encoder.dim));
  Json ngrams = Json::array();
  for (const auto n : encoder.ngram_sizes) ngrams.push_back(static_cast<std::int64_t>(n));
  encoder_json.set("ngram_sizes", ngrams);
  encoder_json.set("use_word_tokens", encoder.use_word_tokens);
  encoder_json.set("word_weight", encoder.word_weight);
  encoder_json.set("ngram_weight", encoder.ngram_weight);
  encoder_json.set("seed", static_cast<std::int64_t>(encoder.seed));

  Json model_json = Json::object();
  model_json.set("kind", model_kind_name(model));
  model_json.set("knn_k", static_cast<std::int64_t>(knn.k));
  model_json.set("knn_minkowski_p", knn.minkowski_p);
  model_json.set("knn_index_mode", knn_index_mode_name(knn.index.mode));
  model_json.set("knn_index_min_rows", static_cast<std::int64_t>(knn.index.min_rows));
  model_json.set("knn_index_leaf_size", static_cast<std::int64_t>(knn.index.leaf_size));
  model_json.set("knn_index_ivf_clusters", static_cast<std::int64_t>(knn.index.ivf_clusters));
  model_json.set("knn_index_ivf_nprobe", static_cast<std::int64_t>(knn.index.ivf_nprobe));
  model_json.set("rf_trees", static_cast<std::int64_t>(forest.n_trees));
  model_json.set("rf_max_bins", static_cast<std::int64_t>(forest.max_bins));
  model_json.set("rf_max_depth", static_cast<std::int64_t>(forest.tree.max_depth));
  model_json.set("rf_seed", static_cast<std::int64_t>(forest.seed));

  Json theta_json = Json::object();
  const char* mode = theta.mode == ThetaConfig::Sampling::kAll
                         ? "all"
                         : (theta.mode == ThetaConfig::Sampling::kLatest ? "latest" : "random");
  theta_json.set("mode", mode);
  theta_json.set("theta", static_cast<std::int64_t>(theta.theta));
  theta_json.set("seed", static_cast<std::int64_t>(theta.seed));

  Json out = Json::object();
  out.set("machine", machine_json);
  out.set("features", features_json);
  out.set("encoder", encoder_json);
  out.set("model", model_json);
  out.set("alpha_days", alpha_days);
  out.set("beta_days", beta_days);
  out.set("theta", theta_json);
  out.set("registry_dir", registry_dir);
  out.set("server_port", server_port);
  return out;
}

std::optional<FrameworkConfig> FrameworkConfig::from_json(const Json& json,
                                                          std::string* error) {
  const auto fail = [error](const std::string& message) -> std::optional<FrameworkConfig> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!json.is_object()) return fail("config must be a JSON object");

  static const char* kKnownKeys[] = {"machine", "features",   "encoder",      "model",
                                     "alpha_days", "beta_days", "theta",
                                     "registry_dir", "server_port"};
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) return fail("unknown config key '" + key + "'");
  }

  FrameworkConfig config;
  if (json.contains("machine")) {
    const Json& m = json["machine"];
    if (m.contains("name")) config.machine.name = m["name"].as_string();
    config.machine.peak_gflops = m["peak_gflops"].as_double(config.machine.peak_gflops);
    config.machine.peak_bandwidth_gbs =
        m["peak_bandwidth_gbs"].as_double(config.machine.peak_bandwidth_gbs);
    if (config.machine.peak_gflops <= 0.0 || config.machine.peak_bandwidth_gbs <= 0.0) {
      return fail("machine peaks must be positive");
    }
  }
  if (json.contains("features")) {
    config.features.clear();
    for (const Json& f : json["features"].as_array()) {
      const auto feature = parse_job_feature(f.as_string());
      if (!feature.has_value()) return fail("unknown feature '" + f.as_string() + "'");
      config.features.push_back(*feature);
    }
    if (config.features.empty()) return fail("feature set is empty");
  }
  if (json.contains("encoder")) {
    const Json& e = json["encoder"];
    config.encoder.dim = static_cast<std::size_t>(
        e["dim"].as_int(static_cast<std::int64_t>(config.encoder.dim)));
    if (config.encoder.dim == 0 || config.encoder.dim > (1 << 20)) {
      return fail("encoder dim out of range");
    }
    if (e.contains("ngram_sizes")) {
      config.encoder.ngram_sizes.clear();
      for (const Json& n : e["ngram_sizes"].as_array()) {
        config.encoder.ngram_sizes.push_back(static_cast<std::size_t>(n.as_int()));
      }
    }
    config.encoder.use_word_tokens =
        e["use_word_tokens"].as_bool(config.encoder.use_word_tokens);
    config.encoder.word_weight = e["word_weight"].as_double(config.encoder.word_weight);
    config.encoder.ngram_weight = e["ngram_weight"].as_double(config.encoder.ngram_weight);
    config.encoder.seed = static_cast<std::uint64_t>(
        e["seed"].as_int(static_cast<std::int64_t>(config.encoder.seed)));
  }
  if (json.contains("model")) {
    const Json& m = json["model"];
    if (m.contains("kind")) {
      const auto kind = parse_model_kind(m["kind"].as_string());
      if (!kind.has_value()) return fail("unknown model kind '" + m["kind"].as_string() + "'");
      config.model = *kind;
    }
    config.knn.k = static_cast<std::size_t>(
        m["knn_k"].as_int(static_cast<std::int64_t>(config.knn.k)));
    config.knn.minkowski_p = m["knn_minkowski_p"].as_double(config.knn.minkowski_p);
    if (m.contains("knn_index_mode")) {
      const auto mode = parse_knn_index_mode(m["knn_index_mode"].as_string());
      if (!mode.has_value()) {
        return fail("unknown knn_index_mode '" + m["knn_index_mode"].as_string() +
                    "' (expected none/tree/ivf)");
      }
      config.knn.index.mode = *mode;
    }
    config.knn.index.min_rows = static_cast<std::size_t>(
        m["knn_index_min_rows"].as_int(static_cast<std::int64_t>(config.knn.index.min_rows)));
    config.knn.index.leaf_size = static_cast<std::size_t>(
        m["knn_index_leaf_size"].as_int(static_cast<std::int64_t>(config.knn.index.leaf_size)));
    config.knn.index.ivf_clusters = static_cast<std::size_t>(m["knn_index_ivf_clusters"].as_int(
        static_cast<std::int64_t>(config.knn.index.ivf_clusters)));
    config.knn.index.ivf_nprobe = static_cast<std::size_t>(m["knn_index_ivf_nprobe"].as_int(
        static_cast<std::int64_t>(config.knn.index.ivf_nprobe)));
    if (config.knn.index.leaf_size == 0 || config.knn.index.ivf_nprobe == 0) {
      return fail("knn_index_leaf_size/knn_index_ivf_nprobe must be positive");
    }
    config.forest.n_trees = static_cast<std::size_t>(
        m["rf_trees"].as_int(static_cast<std::int64_t>(config.forest.n_trees)));
    config.forest.max_bins = static_cast<std::size_t>(
        m["rf_max_bins"].as_int(static_cast<std::int64_t>(config.forest.max_bins)));
    config.forest.tree.max_depth = static_cast<std::size_t>(
        m["rf_max_depth"].as_int(static_cast<std::int64_t>(config.forest.tree.max_depth)));
    config.forest.seed = static_cast<std::uint64_t>(
        m["rf_seed"].as_int(static_cast<std::int64_t>(config.forest.seed)));
  }
  config.alpha_days = static_cast<int>(json["alpha_days"].as_int(config.alpha_days));
  config.beta_days = static_cast<int>(json["beta_days"].as_int(config.beta_days));
  if (config.alpha_days <= 0 || config.beta_days <= 0) {
    return fail("alpha_days/beta_days must be positive");
  }
  if (json.contains("theta")) {
    const Json& t = json["theta"];
    const std::string mode = t["mode"].as_string();
    if (mode == "all" || mode.empty()) {
      config.theta.mode = ThetaConfig::Sampling::kAll;
    } else if (mode == "latest") {
      config.theta.mode = ThetaConfig::Sampling::kLatest;
    } else if (mode == "random") {
      config.theta.mode = ThetaConfig::Sampling::kRandom;
    } else {
      return fail("unknown theta mode '" + mode + "'");
    }
    config.theta.theta = static_cast<std::size_t>(t["theta"].as_int(0));
    config.theta.seed = static_cast<std::uint64_t>(
        t["seed"].as_int(static_cast<std::int64_t>(config.theta.seed)));
  }
  if (json.contains("registry_dir")) config.registry_dir = json["registry_dir"].as_string();
  config.server_port = static_cast<int>(json["server_port"].as_int(config.server_port));
  return config;
}

std::optional<FrameworkConfig> FrameworkConfig::load_file(const std::string& path,
                                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto json = Json::parse(buffer.str(), error);
  if (!json.has_value()) return std::nullopt;
  return from_json(*json, error);
}

bool FrameworkConfig::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().pretty() << '\n';
  return static_cast<bool>(out);
}

}  // namespace mcb
