#include "core/online_evaluator.hpp"

#include <algorithm>

namespace mcb {

OnlineEvaluator::OnlineEvaluator(const JobStore& store, const Characterizer& characterizer,
                                 const FeatureEncoder& encoder, ThreadPool* pool)
    : store_(&store), characterizer_(&characterizer), encoder_(&encoder), pool_(pool) {}

template <typename TrainFn, typename PredictFn>
OnlineEvalResult OnlineEvaluator::run_loop(const OnlineEvalConfig& config, TrainFn&& train,
                                           PredictFn&& predict) const {
  OnlineEvalResult result;
  Stopwatch total;

  const std::int64_t beta_secs =
      static_cast<std::int64_t>(std::max(config.beta_days, 1)) * kSecondsPerDay;
  const std::int64_t alpha_secs =
      static_cast<std::int64_t>(std::max(config.alpha_days, 1)) * kSecondsPerDay;

  for (TimePoint t = config.test_start; t < config.test_end; t += beta_secs) {
    const TimePoint window_start =
        config.growing_window ? config.data_start : std::max(config.data_start, t - alpha_secs);

    TrainingReport train_report;
    const bool trained = train(window_start, t, train_report);
    if (!trained || train_report.jobs_used == 0) {
      ++result.skipped_windows;
      continue;
    }
    ++result.retrains;
    result.train_seconds.add(train_report.train_seconds);
    result.train_set_size.add(static_cast<double>(train_report.jobs_used));

    // Predict every job submitted until the next retrain.
    const TimePoint predict_end = std::min(config.test_end, t + beta_secs);
    JobQuery q;
    q.field = JobQuery::TimeField::kSubmitTime;
    q.start_time = t;
    q.end_time = predict_end;
    const auto submitted = store_->query(q);
    if (submitted.empty()) continue;

    std::vector<JobRecord> batch;
    batch.reserve(submitted.size());
    for (const JobRecord* job : submitted) batch.push_back(*job);

    InferenceReport inf_report;
    predict(batch, inf_report);
    if (inf_report.predictions.size() != batch.size()) continue;

    result.predictions += batch.size();
    result.inference_seconds_per_job.add(inf_report.seconds_per_job());
    result.encode_seconds_per_job.add(
        inf_report.encode_seconds / static_cast<double>(batch.size()));

    // Score against the Roofline ground truth (available once the jobs
    // have completed; the paper's evaluate script does this at the end).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto truth = characterizer_->characterize(batch[i]);
      if (!truth.has_value()) continue;  // uncharacterizable: no ground truth
      result.confusion.add(to_label(*truth), inf_report.predictions[i]);
    }
  }

  result.total_seconds = total.seconds();
  return result;
}

OnlineEvalResult OnlineEvaluator::evaluate(
    const std::function<ClassificationModel()>& make_model,
    const OnlineEvalConfig& config) const {
  StoreDataFetcher fetcher(*store_);
  EncodingCache cache(encoder_->dim());
  const TrainingWorkflow training(fetcher, *characterizer_, *encoder_, &cache, pool_);
  const InferenceWorkflow inference(fetcher, *encoder_, &cache, pool_);

  std::optional<ClassificationModel> model;
  return run_loop(
      config,
      [&](TimePoint start, TimePoint end, TrainingReport& report) {
        model.emplace(make_model());
        report = training.run(*model, start, end, config.theta);
        return model->is_trained();
      },
      [&](std::span<const JobRecord> jobs, InferenceReport& report) {
        report = inference.run_jobs(*model, jobs);
      });
}

OnlineEvalResult OnlineEvaluator::evaluate_baseline(const OnlineEvalConfig& config) const {
  StoreDataFetcher fetcher(*store_);
  const TrainingWorkflow training(fetcher, *characterizer_, *encoder_, nullptr, pool_);
  const InferenceWorkflow inference(fetcher, *encoder_, nullptr, pool_);

  LookupBaseline baseline(kNumBoundednessClasses);
  return run_loop(
      config,
      [&](TimePoint start, TimePoint end, TrainingReport& report) {
        report = training.run_baseline(baseline, start, end, config.theta);
        return baseline.is_fitted();
      },
      [&](std::span<const JobRecord> jobs, InferenceReport& report) {
        report = inference.run_jobs_baseline(baseline, jobs);
      });
}

}  // namespace mcb
