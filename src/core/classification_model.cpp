#include "core/classification_model.hpp"

#include "util/thread_pool.hpp"

namespace mcb {

const std::vector<std::string>& boundedness_class_names() {
  static const std::vector<std::string> names = {"memory-bound", "compute-bound"};
  return names;
}

std::optional<ModelKind> parse_model_kind(const std::string& name) {
  if (name == "knn" || name == "KNN") return ModelKind::kKnn;
  if (name == "rf" || name == "RF" || name == "random_forest") return ModelKind::kRandomForest;
  return std::nullopt;
}

const char* model_kind_name(ModelKind kind) noexcept {
  return kind == ModelKind::kKnn ? "knn" : "random_forest";
}

ClassificationModel::ClassificationModel(ModelKind kind, KnnConfig knn_config,
                                         RandomForestConfig rf_config)
    : kind_(kind) {
  if (kind == ModelKind::kKnn) {
    classifier_ = std::make_unique<KnnClassifier>(knn_config);
  } else {
    classifier_ = std::make_unique<RandomForestClassifier>(rf_config);
  }
}

void ClassificationModel::training(FeatureView x, std::span<const Label> y,
                                   ThreadPool* pool) {
  if (kind_ == ModelKind::kRandomForest) {
    static_cast<RandomForestClassifier*>(classifier_.get())->set_training_pool(pool);
  }
  classifier_->fit(x, y);
}

std::vector<Label> ClassificationModel::inference(FeatureView x, ThreadPool* pool) const {
  return classifier_->predict(x, pool);
}

const KnnIndexStats* ClassificationModel::knn_index_stats() const noexcept {
  if (kind_ != ModelKind::kKnn) return nullptr;
  // kind_ == kKnn pins the concrete type (see the constructor).
  const auto& knn = *static_cast<const KnnClassifier*>(classifier_.get());
  return knn.index().ready() ? &knn.index().stats() : nullptr;
}

}  // namespace mcb
