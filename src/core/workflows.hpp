// The two CI/CD workflows of Figure 1.
//
// Training Workflow:  fetch jobs *executed* in the last alpha days ->
// characterize (Roofline labels) -> encode (cache-aware) -> train the
// Classification Model. Optionally sub-samples the window to theta jobs
// (latest-first or uniformly at random — the paper's third experiment).
//
// Inference Workflow: fetch newly *submitted* jobs -> encode -> predict
// memory/compute-bound labels before the jobs execute.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/classification_model.hpp"
#include "core/feature_encoder.hpp"
#include "data/data_fetcher.hpp"
#include "ml/baseline.hpp"
#include "roofline/characterizer.hpp"

namespace mcb {

class ThreadPool;

/// Window sub-sampling for retraining (paper §V-B experiment c).
struct ThetaConfig {
  enum class Sampling { kAll, kLatest, kRandom };
  Sampling mode = Sampling::kAll;
  std::size_t theta = 0;       ///< sample size; ignored when mode == kAll
  std::uint64_t seed = 520;    ///< used by kRandom (paper seeds: 520, 90, 1905, 7, 22)
};

/// Apply theta sub-sampling to a window of jobs ordered by end_time.
std::vector<JobRecord> apply_theta(std::vector<JobRecord> jobs, const ThetaConfig& theta);

struct TrainingReport {
  std::size_t jobs_fetched = 0;
  std::size_t jobs_used = 0;          ///< after theta sub-sampling
  std::size_t uncharacterizable = 0;  ///< jobs that fell back to the majority label
  double fetch_seconds = 0.0;
  double characterize_seconds = 0.0;
  double encode_seconds = 0.0;
  double train_seconds = 0.0;         ///< model fit only (paper's "training time")
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class TrainingWorkflow {
 public:
  TrainingWorkflow(const DataFetcher& fetcher, const Characterizer& characterizer,
                   const FeatureEncoder& encoder, EncodingCache* cache = nullptr,
                   ThreadPool* pool = nullptr);

  /// Train `model` on the jobs executed in [window_start, window_end).
  /// Returns the report; leaves the model untrained if the window is
  /// empty (report.jobs_used == 0).
  TrainingReport run(ClassificationModel& model, TimePoint window_start,
                     TimePoint window_end, const ThetaConfig& theta = {}) const;

  /// Same pipeline for the paper's (job name, #cores) lookup baseline.
  TrainingReport run_baseline(LookupBaseline& baseline, TimePoint window_start,
                              TimePoint window_end, const ThetaConfig& theta = {}) const;

 private:
  const DataFetcher* fetcher_;
  const Characterizer* characterizer_;
  const FeatureEncoder* encoder_;
  EncodingCache* cache_;
  ThreadPool* pool_;
};

struct InferenceReport {
  std::vector<std::uint64_t> job_ids;
  std::vector<Label> predictions;
  double fetch_seconds = 0.0;
  double encode_seconds = 0.0;
  double predict_seconds = 0.0;

  std::size_t size() const noexcept { return predictions.size(); }
  /// Per-job inference latency including encoding (the paper's metric).
  double seconds_per_job() const noexcept {
    return predictions.empty()
               ? 0.0
               : (encode_seconds + predict_seconds) / static_cast<double>(predictions.size());
  }
};

class InferenceWorkflow {
 public:
  InferenceWorkflow(const DataFetcher& fetcher, const FeatureEncoder& encoder,
                    EncodingCache* cache = nullptr, ThreadPool* pool = nullptr);

  /// Predict for all jobs *submitted* in [start, end).
  InferenceReport run(const ClassificationModel& model, TimePoint start, TimePoint end) const;

  /// Predict for an explicit batch (e.g. a single just-submitted job).
  InferenceReport run_jobs(const ClassificationModel& model,
                           std::span<const JobRecord> jobs) const;

  /// Baseline counterpart (no encoding; key extraction only).
  InferenceReport run_jobs_baseline(const LookupBaseline& baseline,
                                    std::span<const JobRecord> jobs) const;

 private:
  const DataFetcher* fetcher_;
  const FeatureEncoder* encoder_;
  EncodingCache* cache_;
  ThreadPool* pool_;
};

}  // namespace mcb
