// mcbound::Framework — the top-level facade tying the components of
// Figure 1 together: Data Fetcher + Job Characterizer + Feature Encoder +
// Classification Model + model registry, wired by a FrameworkConfig.
//
// A deployment constructs one Framework over its jobs data storage and
// drives it with the two workflows:
//   framework.train_now(now)        -> Training Workflow (cron, every beta days)
//   framework.predict_job(job)      -> Inference Workflow (per submission)
//   framework.predict_range(a, b)   -> Inference Workflow (periodic batch)
// The HTTP facade in src/serve exposes the same operations over JSON.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/model_registry.hpp"
#include "core/online_evaluator.hpp"
#include "core/workflows.hpp"
#include "data/data_fetcher.hpp"

namespace mcb {

class Framework {
 public:
  /// The store is the deployment's jobs data storage; it must outlive
  /// the framework.
  Framework(FrameworkConfig config, const JobStore& store, ThreadPool* pool = nullptr);

  const FrameworkConfig& config() const noexcept { return config_; }
  const Characterizer& characterizer() const noexcept { return characterizer_; }
  const FeatureEncoder& encoder() const noexcept { return encoder_; }
  ModelRegistry& registry() noexcept { return registry_; }
  const JobStore& store() const noexcept { return *store_; }

  bool has_model() const noexcept { return model_.has_value() && model_->is_trained(); }
  std::optional<std::uint32_t> model_version() const noexcept { return model_version_; }
  std::string model_name() const { return model_kind_name(config_.model); }

  /// The live model, or nullptr before the first train_now()/
  /// load_latest_model(). Lets the serving layer surface model
  /// internals (e.g. KNN spatial-index stats) in /model/info.
  const ClassificationModel* model() const noexcept {
    return model_.has_value() ? &*model_ : nullptr;
  }

  /// Training Workflow: fetch the trailing alpha-day window ending at
  /// `now`, characterize, encode, train, and persist a new model version
  /// to the registry. Returns the report (jobs_used == 0 means the
  /// window was empty and no model was produced).
  TrainingReport train_now(TimePoint now);

  /// Load the newest persisted model instead of training (warm restart).
  bool load_latest_model();

  /// Inference Workflow for one not-yet-executed job.
  std::optional<Boundedness> predict_job(const JobRecord& job) const;

  /// Batched Inference Workflow (serving fast path): encode all jobs —
  /// through the canonical-text LRU cache when one is supplied — and
  /// classify them in a single pool dispatch over the batched model
  /// kernels. Returns an empty vector when no model is trained.
  std::vector<Label> predict_batch(std::span<const JobRecord> jobs,
                                   ShardedEmbeddingCache* text_cache = nullptr) const;

  /// Inference Workflow for all jobs submitted in [start, end).
  InferenceReport predict_range(TimePoint start, TimePoint end) const;

  /// Stand-alone characterization of an executed job (paper §VI:
  /// MCBound as an analysis tool).
  std::optional<Boundedness> characterize_job(const JobRecord& job) const {
    return characterizer_.characterize(job);
  }
  std::optional<JobMetrics> job_metrics(const JobRecord& job) const {
    return characterizer_.compute_metrics(job);
  }

 private:
  ClassificationModel make_model() const;

  FrameworkConfig config_;
  const JobStore* store_;
  StoreDataFetcher fetcher_;
  Characterizer characterizer_;
  FeatureEncoder encoder_;
  mutable EncodingCache cache_;
  ModelRegistry registry_;
  ThreadPool* pool_;
  std::optional<ClassificationModel> model_;
  std::optional<std::uint32_t> model_version_;
};

}  // namespace mcb
