// Classification Model component (paper §III-D): a named wrapper around
// a concrete prediction algorithm, exposing the paper's `training` and
// `inference` methods plus persistence. The label convention is
// memory-bound = 0, compute-bound = 1 throughout the framework.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "roofline/characterizer.hpp"

namespace mcb {

inline constexpr Label kLabelMemoryBound = 0;
inline constexpr Label kLabelComputeBound = 1;
inline constexpr std::size_t kNumBoundednessClasses = 2;

inline Label to_label(Boundedness b) noexcept {
  return b == Boundedness::kComputeBound ? kLabelComputeBound : kLabelMemoryBound;
}
inline Boundedness to_boundedness(Label l) noexcept {
  return l == kLabelComputeBound ? Boundedness::kComputeBound : Boundedness::kMemoryBound;
}

/// Class names indexed by Label, for reports.
const std::vector<std::string>& boundedness_class_names();

enum class ModelKind { kKnn, kRandomForest };

std::optional<ModelKind> parse_model_kind(const std::string& name);
const char* model_kind_name(ModelKind kind) noexcept;

class ClassificationModel {
 public:
  /// Construct with the named algorithm (paper: "the initialization
  /// method takes as input the name of the algorithm to employ").
  explicit ClassificationModel(ModelKind kind, KnnConfig knn_config = {},
                               RandomForestConfig rf_config = {});

  ModelKind kind() const noexcept { return kind_; }
  std::string name() const { return classifier_->name(); }
  bool is_trained() const noexcept { return classifier_->is_fitted(); }

  /// Train on encoded job data + labels (paper's `training` method).
  void training(FeatureView x, std::span<const Label> y, ThreadPool* pool = nullptr);

  /// Predict labels for encoded, unseen jobs (paper's `inference`
  /// method; only valid after training).
  std::vector<Label> inference(FeatureView x, ThreadPool* pool = nullptr) const;

  Classifier& classifier() noexcept { return *classifier_; }
  const Classifier& classifier() const noexcept { return *classifier_; }

  /// Stats of the KNN spatial index (DESIGN.md §11) serving this model's
  /// queries, or nullptr when the model is not KNN or answers through
  /// the brute-force scan (index disabled, p != 2, or below min_rows).
  const KnnIndexStats* knn_index_stats() const noexcept;

  bool save(std::ostream& out) const { return classifier_->save(out); }
  bool load(std::istream& in) { return classifier_->load(in); }

 private:
  ModelKind kind_;
  std::unique_ptr<Classifier> classifier_;
};

}  // namespace mcb
