#include "core/feature_encoder.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

const char* job_feature_name(JobFeature feature) noexcept {
  switch (feature) {
    case JobFeature::kUserName: return "user_name";
    case JobFeature::kJobName: return "job_name";
    case JobFeature::kCoresRequested: return "cores_requested";
    case JobFeature::kNodesRequested: return "nodes_requested";
    case JobFeature::kEnvironment: return "environment";
    case JobFeature::kFrequency: return "frequency";
  }
  return "unknown";
}

std::vector<JobFeature> default_feature_set() {
  return {JobFeature::kUserName,       JobFeature::kJobName,
          JobFeature::kCoresRequested, JobFeature::kNodesRequested,
          JobFeature::kEnvironment,    JobFeature::kFrequency};
}

const float* EncodingCache::lookup(std::uint64_t job_id) noexcept {
  const auto it = index_.find(job_id);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return rows_.data() + static_cast<std::size_t>(it->second) * dim_;
}

void EncodingCache::store(std::uint64_t job_id, std::span<const float> row) {
  if (row.size() != dim_) return;
  const auto it = index_.find(job_id);
  if (it != index_.end()) return;  // already cached
  const auto slot = static_cast<std::uint32_t>(index_.size());
  index_.emplace(job_id, slot);
  rows_.insert(rows_.end(), row.begin(), row.end());
}

void EncodingCache::clear() {
  rows_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

FeatureEncoder::FeatureEncoder(std::vector<JobFeature> features, EncoderConfig encoder_config)
    : features_(std::move(features)), encoder_(std::move(encoder_config)) {}

std::string FeatureEncoder::feature_string(const JobRecord& job) const {
  std::string out;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) out += ',';
    switch (features_[i]) {
      case JobFeature::kUserName: out += job.user_name; break;
      case JobFeature::kJobName: out += job.job_name; break;
      case JobFeature::kCoresRequested: out += std::to_string(job.cores_requested); break;
      case JobFeature::kNodesRequested: out += std::to_string(job.nodes_requested); break;
      case JobFeature::kEnvironment: out += job.environment; break;
      case JobFeature::kFrequency: out += std::to_string(frequency_mhz(job.frequency)); break;
    }
  }
  return out;
}

std::vector<float> FeatureEncoder::encode(const JobRecord& job) const {
  return encoder_.encode(feature_string(job));
}

FeatureMatrix FeatureEncoder::encode_batch(std::span<const JobRecord> jobs,
                                           EncodingCache* cache, ThreadPool* pool) const {
  FeatureMatrix out(jobs.size(), dim());

  if (cache == nullptr) {
    parallel_for_each(
        pool, 0, jobs.size(),
        [&](std::size_t i) {
          const auto vec = encode(jobs[i]);
          std::copy(vec.begin(), vec.end(), out.row(i));
        },
        /*grain=*/16);
    return out;
  }

  // Cache pass is serial (the cache is not synchronized); the expensive
  // encoding of misses is farmed out to the pool.
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // job_id 0 marks an anonymous (ad-hoc) job: never cache it, or two
    // different anonymous jobs would share one embedding.
    const float* cached = jobs[i].job_id != 0 ? cache->lookup(jobs[i].job_id) : nullptr;
    if (cached != nullptr) {
      std::copy(cached, cached + dim(), out.row(i));
    } else {
      misses.push_back(i);
    }
  }
  parallel_for_each(
      pool, 0, misses.size(),
      [&](std::size_t m) {
        const std::size_t i = misses[m];
        const auto vec = encode(jobs[i]);
        std::copy(vec.begin(), vec.end(), out.row(i));
      },
      /*grain=*/16);
  for (const std::size_t i : misses) {
    if (jobs[i].job_id != 0) {
      cache->store(jobs[i].job_id, std::span<const float>(out.row(i), dim()));
    }
  }
  return out;
}

FeatureMatrix FeatureEncoder::encode_batch_cached(std::span<const JobRecord> jobs,
                                                  ShardedEmbeddingCache& cache,
                                                  ThreadPool* pool) const {
  FeatureMatrix out(jobs.size(), dim());
  std::vector<std::string> keys(jobs.size());
  std::vector<std::size_t> misses;
  {
    obs::Span lookup_span(obs::Stage::kCacheLookup);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      keys[i] = feature_string(jobs[i]);
      if (!cache.lookup(keys[i], std::span<float>(out.row(i), dim()))) misses.push_back(i);
    }
  }
  // Encoding misses is the expensive part; the cache is thread-safe so
  // insertion happens inside the parallel region. The span is measured
  // on the calling thread, which blocks until the pool drains the batch.
  obs::Span encode_span(obs::Stage::kEncode);
  parallel_for_each(
      pool, 0, misses.size(),
      [&](std::size_t m) {
        const std::size_t i = misses[m];
        const auto vec = encoder_.encode(keys[i]);
        std::copy(vec.begin(), vec.end(), out.row(i));
        cache.insert(keys[i], vec);
      },
      /*grain=*/16);
  return out;
}

}  // namespace mcb
