#include "core/model_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace mcb {

ModelRegistry::ModelRegistry(std::string root_dir) : root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

std::string ModelRegistry::path_for(const std::string& tag, std::uint32_t version) const {
  return root_ + "/" + tag + "-v" + std::to_string(version) + ".mcbm";
}

std::vector<std::uint32_t> ModelRegistry::versions(const std::string& tag) const {
  std::vector<std::uint32_t> out;
  std::error_code ec;
  const std::string prefix = tag + "-v";
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!starts_with(name, prefix) || !ends_with(name, ".mcbm")) continue;
    const std::string middle = name.substr(prefix.size(), name.size() - prefix.size() - 5);
    std::uint64_t v = 0;
    if (parse_u64(middle, v)) out.push_back(static_cast<std::uint32_t>(v));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint32_t> ModelRegistry::latest_version(const std::string& tag) const {
  const auto all = versions(tag);
  if (all.empty()) return std::nullopt;
  return all.back();
}

std::optional<std::uint32_t> ModelRegistry::save(const ClassificationModel& model,
                                                 const std::string& tag) {
  const std::uint32_t version = latest_version(tag).value_or(0) + 1;
  const std::string path = path_for(tag, version);
  std::ofstream out(path, std::ios::binary);
  if (!out || !model.save(out)) {
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
  return version;
}

std::optional<ClassificationModel> ModelRegistry::load(
    ModelKind kind, const std::string& tag, std::optional<std::uint32_t> version) const {
  if (!version.has_value()) version = latest_version(tag);
  if (!version.has_value()) return std::nullopt;
  std::ifstream in(path_for(tag, *version), std::ios::binary);
  if (!in) return std::nullopt;
  ClassificationModel model(kind);
  if (!model.load(in)) return std::nullopt;
  return model;
}

std::size_t ModelRegistry::prune(const std::string& tag, std::size_t keep_latest) {
  const auto all = versions(tag);
  if (all.size() <= keep_latest) return 0;
  std::size_t removed = 0;
  for (std::size_t i = 0; i + keep_latest < all.size(); ++i) {
    std::error_code ec;
    if (fs::remove(path_for(tag, all[i]), ec)) ++removed;
  }
  return removed;
}

}  // namespace mcb
