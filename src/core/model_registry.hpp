// Versioned on-disk model store — the skops.io substitute (paper §III-E:
// "trained model instances are saved to the machine file system ... in
// order to handle and maintain different versions of the models").
//
// Layout: <root>/<tag>-v<N>.mcbm, N monotonically increasing per tag.
// Files carry the MCBM magic header, so foreign files are rejected at
// load time rather than deserialized blindly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/classification_model.hpp"

namespace mcb {

class ModelRegistry {
 public:
  explicit ModelRegistry(std::string root_dir);

  const std::string& root() const noexcept { return root_; }

  /// Persist the model under `tag`; returns the new version number, or
  /// std::nullopt on I/O failure.
  std::optional<std::uint32_t> save(const ClassificationModel& model,
                                    const std::string& tag);

  /// Latest stored version for a tag (nullopt if none).
  std::optional<std::uint32_t> latest_version(const std::string& tag) const;

  /// Load a version (latest when `version` is nullopt) into a fresh
  /// model of the given kind. Returns nullopt on missing/corrupt files.
  std::optional<ClassificationModel> load(ModelKind kind, const std::string& tag,
                                          std::optional<std::uint32_t> version = {}) const;

  /// All stored versions of a tag, ascending.
  std::vector<std::uint32_t> versions(const std::string& tag) const;

  /// Delete versions older than `keep_latest` (retention policy).
  std::size_t prune(const std::string& tag, std::size_t keep_latest);

  std::string path_for(const std::string& tag, std::uint32_t version) const;

 private:
  std::string root_;
};

}  // namespace mcb
