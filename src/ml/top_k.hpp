// Shared top-k selection buffer for every KNN path (scalar scan, tiled
// scan, regressor, and the spatial index).
//
// A size-k sorted insertion buffer: k is tiny (default 5) so the shift
// is cheaper than heap bookkeeping. Candidates are ordered by the pair
// (distance, row id) — on equal distance the *lower original row id*
// wins. For a sequential 0..n-1 scan that is exactly the historical
// "first-seen row wins" behaviour, and because the ordering no longer
// depends on visit order, any traversal (tree descent, IVF cell probes)
// that considers the same candidate set produces bit-identical results.
// This order-independence is the contract that lets knn_index prune
// without changing predictions (DESIGN.md §11).
//
// NaN distances are never admitted (every comparison against NaN is
// false), so a poisoned candidate cannot make the outcome depend on the
// order in which rows were visited. Slots never filled keep the
// kTopKNoRow sentinel; consumers must skip it.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/annotations.hpp"

namespace mcb {

/// Sentinel row id for top-k slots that were never filled (fewer than k
/// admissible candidates, e.g. all-NaN distances).
inline constexpr std::size_t kTopKNoRow = std::numeric_limits<std::size_t>::max();

class TopK {
 public:
  TopK(std::vector<std::size_t>& idx, std::vector<double>& dist, std::size_t k)
      : idx_(idx), dist_(dist), k_(k) {
    idx_.assign(k, kTopKNoRow);
    dist_.assign(k, std::numeric_limits<double>::infinity());
  }

  /// Lexicographic (distance, row) ordering; the sentinel's row id is
  /// the maximum so real candidates displace unfilled slots even at
  /// d == +inf. NaN loses every comparison and is never inserted.
  static bool better(double d, std::size_t row, double incumbent_d,
                     std::size_t incumbent_row) noexcept {
    return d < incumbent_d || (d == incumbent_d && row < incumbent_row);
  }

  MCB_HOT_PATH void consider(std::size_t row, double d) {
    if (!better(d, row, dist_.back(), idx_.back())) return;
    std::size_t pos = k_ - 1;
    while (pos > 0 && better(d, row, dist_[pos - 1], idx_[pos - 1])) {
      dist_[pos] = dist_[pos - 1];
      idx_[pos] = idx_[pos - 1];
      --pos;
    }
    dist_[pos] = d;
    idx_[pos] = row;
  }

  /// Worst admitted distance — the pruning bound for index traversals.
  double worst() const noexcept { return dist_.back(); }

 private:
  std::vector<std::size_t>& idx_;
  std::vector<double>& dist_;
  std::size_t k_;
};

}  // namespace mcb
