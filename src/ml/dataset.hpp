// Dense row-major feature matrices for the classifiers.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mcb {

/// Non-owning view of a dense row-major float matrix.
struct FeatureView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::span<const float> row(std::size_t i) const {
    assert(i < rows);
    return {data + i * cols, cols};
  }
  bool empty() const noexcept { return rows == 0 || cols == 0; }
};

/// Owning dense row-major float matrix.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}
  FeatureMatrix(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  float* row(std::size_t i) { return data_.data() + i * cols_; }
  std::span<const float> row(std::size_t i) const { return {data_.data() + i * cols_, cols_}; }
  std::vector<float>& storage() noexcept { return data_; }
  const std::vector<float>& storage() const noexcept { return data_; }

  FeatureView view() const noexcept { return {data_.data(), rows_, cols_}; }

  /// Gather a subset of rows into a new matrix.
  FeatureMatrix gather(std::span<const std::size_t> indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Class labels are small dense integers [0, n_classes).
using Label = std::int32_t;

}  // namespace mcb
