// Common interface implemented by every Classification Model algorithm
// (paper §III-D: "it is possible to implement any data-driven prediction
// algorithm"). The online framework (src/core) programs against this.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace mcb {

class ThreadPool;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on (X, y); y values must lie in [0, n_classes).
  virtual void fit(FeatureView x, std::span<const Label> y) = 0;

  /// Predict labels for a batch. Must be called after fit().
  virtual std::vector<Label> predict(FeatureView x, ThreadPool* pool = nullptr) const = 0;

  virtual bool is_fitted() const noexcept = 0;
  virtual std::string name() const = 0;
  virtual std::size_t n_classes() const noexcept = 0;

  /// Binary (de)serialization, used by the model registry (skops
  /// substitute). Both return false on malformed streams.
  virtual bool save(std::ostream& out) const = 0;
  virtual bool load(std::istream& in) = 0;
};

}  // namespace mcb
