#include "ml/knn_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "ml/knn_kernels.hpp"
#include "ml/serialize.hpp"
#include "ml/top_k.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace mcb {

namespace {

/// Conservative pruning slack. Leaf distances come from a float dot
/// kernel whose rounding error is bounded by ~dim * eps_f relative to
/// the candidate magnitudes, while the box bound is geometric (computed
/// on the true coordinates). The slack keeps "skip this subtree" safe
/// against that rounding gap: a subtree is only pruned when its best
/// possible distance beats the current k-th best by more than any
/// accumulated float error could explain, so the tree can never drop a
/// row the scan would have kept. At 1e-4 relative the lost pruning
/// power is unmeasurable.
constexpr double kPruneSlackRel = 1e-4;

constexpr std::uint64_t kMaxDim = 1ULL << 24;

bool all_finite(const float* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

const char* knn_index_mode_name(KnnIndexMode mode) noexcept {
  switch (mode) {
    case KnnIndexMode::kBoundTree:
      return "tree";
    case KnnIndexMode::kIvfFlat:
      return "ivf";
    case KnnIndexMode::kNone:
      break;
  }
  return "none";
}

std::optional<KnnIndexMode> parse_knn_index_mode(std::string_view name) noexcept {
  if (name == "none") return KnnIndexMode::kNone;
  if (name == "tree") return KnnIndexMode::kBoundTree;
  if (name == "ivf") return KnnIndexMode::kIvfFlat;
  return std::nullopt;
}

void KnnIndex::clear() {
  stats_ = {};
  dim_ = 0;
  points_.clear();
  norms_.clear();
  group_offsets_.clear();
  group_rows_.clear();
  nodes_.clear();
  bounds_lo_.clear();
  bounds_hi_.clear();
  centroids_.clear();
  cell_offsets_.clear();
}

// ---------------------------------------------------------------- build

bool KnnIndex::dedup(FeatureView data) {
  // Group byte-identical rows: identical bytes produce identical dot
  // products under any deterministic kernel, so one distance per unique
  // point stands in for the whole group. NaN payload bits group too
  // (byte equality, not float equality), but build() already refused
  // non-finite data before this runs.
  const std::size_t row_bytes = data.cols * sizeof(float);
  std::unordered_map<std::string_view, std::uint32_t> seen;
  seen.reserve(data.rows);
  std::vector<std::uint32_t> row_uid(data.rows);
  std::vector<float> unique_points;
  for (std::size_t i = 0; i < data.rows; ++i) {
    const char* bytes = reinterpret_cast<const char*>(data.data + i * data.cols);
    const auto [it, inserted] =
        seen.emplace(std::string_view(bytes, row_bytes),
                     static_cast<std::uint32_t>(unique_points.size() / data.cols));
    if (inserted) {
      unique_points.insert(unique_points.end(), data.data + i * data.cols,
                           data.data + (i + 1) * data.cols);
    }
    row_uid[i] = it->second;
  }
  const std::size_t nu = unique_points.size() / data.cols;
  if (nu == 0 || nu > std::numeric_limits<std::uint32_t>::max() - 1) return false;

  // Per-group original row ids, ascending (rows visited in order).
  std::vector<std::uint32_t> group_count(nu, 0);
  for (const std::uint32_t uid : row_uid) ++group_count[uid];
  std::vector<std::uint32_t> group_begin(nu, 0);
  std::uint32_t acc = 0;
  for (std::size_t u = 0; u < nu; ++u) {
    group_begin[u] = acc;
    acc += group_count[u];
  }
  std::vector<std::uint32_t> group_rows(data.rows);
  std::vector<std::uint32_t> cursor = group_begin;
  for (std::size_t i = 0; i < data.rows; ++i) {
    group_rows[cursor[row_uid[i]]++] = static_cast<std::uint32_t>(i);
  }

  // Build the reordering (tree leaves / IVF cells) over unique ids,
  // then gather points and groups into that order.
  std::vector<std::uint32_t> order(nu);
  for (std::size_t u = 0; u < nu; ++u) order[u] = static_cast<std::uint32_t>(u);

  if (config_.mode == KnnIndexMode::kBoundTree) {
    nodes_.clear();
    nodes_.reserve(2 * nu / std::max<std::size_t>(config_.leaf_size, 1) + 2);
    // Recursive median split over `order`; nodes are appended preorder
    // so children always follow their parent.
    struct Builder {
      std::vector<Node>& nodes;
      const std::vector<float>& pts;
      std::size_t dim;
      std::size_t leaf_size;
      std::int32_t build(std::vector<std::uint32_t>& order, std::uint32_t begin,
                         std::uint32_t end) {
        const auto idx = static_cast<std::int32_t>(nodes.size());
        nodes.push_back(Node{-1, -1, begin, end});
        const std::size_t count = end - begin;
        if (count <= leaf_size) return idx;
        // Widest dimension of this subset's bounding box.
        std::size_t split_dim = 0;
        float best_extent = -1.0F;
        for (std::size_t d = 0; d < dim; ++d) {
          float lo = pts[static_cast<std::size_t>(order[begin]) * dim + d];
          float hi = lo;
          for (std::uint32_t p = begin + 1; p < end; ++p) {
            const float v = pts[static_cast<std::size_t>(order[p]) * dim + d];
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          const float extent = hi - lo;
          if (extent > best_extent) {
            best_extent = extent;
            split_dim = d;
          }
        }
        // Zero extent means every remaining unique point is value-equal
        // (e.g. -0.0 vs 0.0 byte-distinct rows): splitting cannot make
        // progress, so the node stays a leaf.
        if (!(best_extent > 0.0F)) return idx;
        const std::uint32_t mid = begin + static_cast<std::uint32_t>(count / 2);
        std::nth_element(order.begin() + begin, order.begin() + mid, order.begin() + end,
                         [&](std::uint32_t a, std::uint32_t b) {
                           return pts[static_cast<std::size_t>(a) * dim + split_dim] <
                                  pts[static_cast<std::size_t>(b) * dim + split_dim];
                         });
        const std::int32_t left = build(order, begin, mid);
        const std::int32_t right = build(order, mid, end);
        nodes[static_cast<std::size_t>(idx)].left = left;
        nodes[static_cast<std::size_t>(idx)].right = right;
        return idx;
      }
    };
    Builder builder{nodes_, unique_points, dim_, std::max<std::size_t>(config_.leaf_size, 1)};
    std::vector<std::uint32_t> mutable_order = order;
    builder.build(mutable_order, 0, static_cast<std::uint32_t>(nu));
    order = std::move(mutable_order);
  } else if (config_.mode == KnnIndexMode::kIvfFlat) {
    // k-means over unique points: sampled init, a few Lloyd rounds,
    // deterministic tie-breaks (lower cell id wins).
    const std::size_t want = config_.ivf_clusters != 0
                                 ? config_.ivf_clusters
                                 : static_cast<std::size_t>(
                                       std::ceil(std::sqrt(static_cast<double>(nu))));
    const std::size_t c = std::clamp<std::size_t>(want, 1, nu);
    Rng rng(config_.seed);
    std::vector<std::uint32_t> pool = order;
    for (std::size_t i = 0; i < c; ++i) {
      const std::size_t j = i + rng.bounded(pool.size() - i);
      std::swap(pool[i], pool[j]);
    }
    centroids_.assign(c * dim_, 0.0F);
    for (std::size_t i = 0; i < c; ++i) {
      std::copy_n(unique_points.data() + static_cast<std::size_t>(pool[i]) * dim_, dim_,
                  centroids_.data() + i * dim_);
    }
    std::vector<std::uint32_t> assign(nu, 0);
    constexpr int kLloydRounds = 10;
    for (int round = 0; round < kLloydRounds; ++round) {
      for (std::size_t u = 0; u < nu; ++u) {
        const float* p = unique_points.data() + u * dim_;
        double best = std::numeric_limits<double>::infinity();
        std::uint32_t best_cell = 0;
        for (std::size_t cell = 0; cell < c; ++cell) {
          const float* ctr = centroids_.data() + cell * dim_;
          double d2 = 0.0;
          for (std::size_t j = 0; j < dim_; ++j) {
            const double diff = static_cast<double>(p[j]) - ctr[j];
            d2 += diff * diff;
          }
          if (d2 < best) {
            best = d2;
            best_cell = static_cast<std::uint32_t>(cell);
          }
        }
        assign[u] = best_cell;
      }
      std::vector<double> sums(c * dim_, 0.0);
      std::vector<std::uint32_t> counts(c, 0);
      for (std::size_t u = 0; u < nu; ++u) {
        const float* p = unique_points.data() + u * dim_;
        double* s = sums.data() + static_cast<std::size_t>(assign[u]) * dim_;
        for (std::size_t j = 0; j < dim_; ++j) s[j] += p[j];
        ++counts[assign[u]];
      }
      for (std::size_t cell = 0; cell < c; ++cell) {
        if (counts[cell] == 0) continue;  // empty cells keep their centroid
        float* ctr = centroids_.data() + cell * dim_;
        for (std::size_t j = 0; j < dim_; ++j) {
          ctr[j] = static_cast<float>(sums[cell * dim_ + j] / counts[cell]);
        }
      }
    }
    // Order points by (cell, unique id); drop empty cells so every
    // stored cell has a non-empty segment.
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return assign[a] < assign[b];
    });
    std::vector<float> kept_centroids;
    cell_offsets_.assign(1, 0);
    std::size_t pos = 0;
    for (std::size_t cell = 0; cell < c; ++cell) {
      std::size_t end = pos;
      while (end < nu && assign[order[end]] == cell) ++end;
      if (end > pos) {
        kept_centroids.insert(kept_centroids.end(), centroids_.begin() + cell * dim_,
                              centroids_.begin() + (cell + 1) * dim_);
        cell_offsets_.push_back(static_cast<std::uint32_t>(end));
      }
      pos = end;
    }
    centroids_ = std::move(kept_centroids);
  }

  finish_reorder(order, unique_points, group_begin, group_count, group_rows);
  return true;
}

void KnnIndex::finish_reorder(const std::vector<std::uint32_t>& order,
                              const std::vector<float>& unique_points,
                              const std::vector<std::uint32_t>& group_begin,
                              const std::vector<std::uint32_t>& group_count,
                              const std::vector<std::uint32_t>& group_rows) {
  const std::size_t nu = order.size();
  points_.resize(nu * dim_);
  group_offsets_.assign(nu + 1, 0);
  group_rows_.resize(group_rows.size());
  std::uint32_t out = 0;
  for (std::size_t pos = 0; pos < nu; ++pos) {
    const std::uint32_t uid = order[pos];
    std::copy_n(unique_points.data() + static_cast<std::size_t>(uid) * dim_, dim_,
                points_.data() + pos * dim_);
    group_offsets_[pos] = out;
    std::copy_n(group_rows.data() + group_begin[uid], group_count[uid],
                group_rows_.data() + out);
    out += group_count[uid];
  }
  group_offsets_[nu] = out;
}

void KnnIndex::recompute_derived() {
  const std::size_t nu = points_.size() / std::max<std::size_t>(dim_, 1);
  norms_.resize(nu);
  for (std::size_t u = 0; u < nu; ++u) {
    norms_[u] = row_norm_sq(points_.data() + u * dim_, dim_);
  }
  bounds_lo_.assign(nodes_.size() * dim_, 0.0F);
  bounds_hi_.assign(nodes_.size() * dim_, 0.0F);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    float* lo = bounds_lo_.data() + n * dim_;
    float* hi = bounds_hi_.data() + n * dim_;
    for (std::size_t d = 0; d < dim_; ++d) {
      lo[d] = std::numeric_limits<float>::infinity();
      hi[d] = -std::numeric_limits<float>::infinity();
    }
    for (std::uint32_t p = node.begin; p < node.end; ++p) {
      const float* point = points_.data() + static_cast<std::size_t>(p) * dim_;
      for (std::size_t d = 0; d < dim_; ++d) {
        lo[d] = std::min(lo[d], point[d]);
        hi[d] = std::max(hi[d], point[d]);
      }
    }
  }
}

bool KnnIndex::build(FeatureView data, const KnnIndexConfig& config) {
  clear();
  if (config.mode == KnnIndexMode::kNone) return false;
  if (data.empty() || data.rows > std::numeric_limits<std::uint32_t>::max()) return false;
  if (!all_finite(data.data, data.rows * data.cols)) return false;
  config_ = config;
  dim_ = data.cols;
  if (!dedup(data)) {
    clear();
    return false;
  }
  recompute_derived();
  stats_.mode = config_.mode;
  stats_.rows = data.rows;
  stats_.unique_rows = points_.size() / dim_;
  stats_.nodes = nodes_.size();
  for (const Node& node : nodes_) {
    if (node.left < 0) ++stats_.leaves;
  }
  stats_.clusters = cell_offsets_.empty() ? 0 : cell_offsets_.size() - 1;
  stats_.nprobe = std::max<std::size_t>(config_.ivf_nprobe, 1);
  stats_.exact = config_.mode == KnnIndexMode::kBoundTree || stats_.nprobe >= stats_.clusters;
  return true;
}

// --------------------------------------------------------------- search

MCB_HOT_PATH double KnnIndex::node_min_dist_sq(std::size_t node, const float* q) const {
  const float* lo = bounds_lo_.data() + node * dim_;
  const float* hi = bounds_hi_.data() + node * dim_;
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double diff = 0.0;
    if (q[d] < lo[d]) {
      diff = static_cast<double>(lo[d]) - q[d];
    } else if (q[d] > hi[d]) {
      diff = static_cast<double>(q[d]) - hi[d];
    }
    sum += diff * diff;
  }
  return sum;
}

MCB_HOT_PATH void KnnIndex::scan_segment(std::uint32_t begin, std::uint32_t end,
                                         const float* q, std::size_t k, TopK& top) const {
  float dots[kScanTile];
  for (std::uint32_t base = begin; base < end; base += kScanTile) {
    const std::size_t count = std::min<std::size_t>(kScanTile, end - base);
    tile_dots(points_.data() + static_cast<std::size_t>(base) * dim_, count, dim_, q, dots);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t u = base + i;
      // Same distance key as KnnClassifier::top_k_scan: monotone in the
      // true distance; the query norm is constant across rows.
      const double d = static_cast<double>(norms_[u]) - 2.0 * static_cast<double>(dots[i]);
      const std::uint32_t off = group_offsets_[u];
      const std::uint32_t take =
          std::min<std::uint32_t>(static_cast<std::uint32_t>(k), group_offsets_[u + 1] - off);
      // Duplicates tie on distance, so only the group's first k
      // (lowest) row ids can survive the shared tie-break.
      for (std::uint32_t j = 0; j < take; ++j) {
        top.consider(group_rows_[off + j], d);
      }
    }
  }
}

// Traversal scratch lives in thread_local vectors (same idiom as
// KnnClassifier::predict_one): after the first few queries on a thread
// the capacity is warm and the fast path performs no allocation.
MCB_HOT_PATH
// mcb-lint: suppress(R10: warm thread_local scratch — growth amortizes to zero across queries)
bool KnnIndex::search(std::span<const float> query, std::size_t k,
                      std::vector<std::size_t>& idx, std::vector<double>& dist) const {
  if (!ready() || query.size() != dim_ || k == 0) return false;
  if (!all_finite(query.data(), query.size())) return false;

  double query_norm = 0.0;
  for (const float v : query) query_norm += static_cast<double>(v) * v;
  const std::size_t k_eff = std::min(k, stats_.rows);
  TopK top(idx, dist, k_eff);
  const float* q = query.data();

  if (stats_.mode == KnnIndexMode::kBoundTree) {
    // Depth-first, nearer child first; prune when a subtree's best
    // possible distance (shifted into the scan's query-norm-free key
    // space) cannot beat the current k-th best even after allowing for
    // kernel rounding slack.
    const auto prunable = [&](double bound_sq) {
      const double tau = top.worst();
      const double slack = kPruneSlackRel * (1.0 + std::abs(query_norm) + std::abs(tau));
      return bound_sq - query_norm > tau + slack;
    };
    thread_local std::vector<std::pair<std::int32_t, double>> stack;
    stack.clear();
    stack.reserve(64);
    stack.emplace_back(0, node_min_dist_sq(0, q));
    while (!stack.empty()) {
      const auto [node_idx, bound] = stack.back();
      stack.pop_back();
      if (prunable(bound)) continue;
      const Node& node = nodes_[static_cast<std::size_t>(node_idx)];
      if (node.left < 0) {
        scan_segment(node.begin, node.end, q, k_eff, top);
        continue;
      }
      const double left_bound = node_min_dist_sq(static_cast<std::size_t>(node.left), q);
      const double right_bound = node_min_dist_sq(static_cast<std::size_t>(node.right), q);
      if (left_bound <= right_bound) {
        stack.emplace_back(node.right, right_bound);
        stack.emplace_back(node.left, left_bound);
      } else {
        stack.emplace_back(node.left, left_bound);
        stack.emplace_back(node.right, right_bound);
      }
    }
  } else {
    const std::size_t cells = cell_offsets_.size() - 1;
    thread_local std::vector<std::pair<double, std::uint32_t>> ranked;
    ranked.resize(cells);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const float* ctr = centroids_.data() + cell * dim_;
      double d2 = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        const double diff = static_cast<double>(q[j]) - ctr[j];
        d2 += diff * diff;
      }
      ranked[cell] = {d2, static_cast<std::uint32_t>(cell)};
    }
    const std::size_t nprobe = std::min(stats_.nprobe, cells);
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(nprobe),
                      ranked.end());
    for (std::size_t p = 0; p < nprobe; ++p) {
      const std::uint32_t cell = ranked[p].second;
      scan_segment(cell_offsets_[cell], cell_offsets_[cell + 1], q, k_eff, top);
    }
  }
  return true;
}

// ------------------------------------------------------------ serialize

bool KnnIndex::save(std::ostream& out) const {
  if (!ready()) return false;
  io::write_header(out, io::kKindKnnIndex);
  io::write_pod(out, static_cast<std::uint32_t>(stats_.mode));
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_pod(out, static_cast<std::uint64_t>(stats_.rows));
  io::write_pod(out, static_cast<std::uint64_t>(config_.leaf_size));
  io::write_pod(out, static_cast<std::uint64_t>(config_.ivf_nprobe));
  io::write_pod(out, static_cast<std::uint64_t>(config_.min_rows));
  io::write_pod(out, config_.seed);
  io::write_vec(out, points_);
  io::write_vec(out, group_offsets_);
  io::write_vec(out, group_rows_);
  io::write_vec(out, nodes_);
  io::write_vec(out, centroids_);
  io::write_vec(out, cell_offsets_);
  return static_cast<bool>(out);
}

bool KnnIndex::load(std::istream& in) {
  clear();
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnnIndex) return false;
  std::uint32_t mode = 0;
  std::uint64_t dim = 0, rows = 0, leaf_size = 0, nprobe = 0, min_rows = 0, seed = 0;
  if (!io::read_pod(in, mode) || !io::read_pod(in, dim) || !io::read_pod(in, rows) ||
      !io::read_pod(in, leaf_size) || !io::read_pod(in, nprobe) ||
      !io::read_pod(in, min_rows) || !io::read_pod(in, seed)) {
    return false;
  }
  if (mode != static_cast<std::uint32_t>(KnnIndexMode::kBoundTree) &&
      mode != static_cast<std::uint32_t>(KnnIndexMode::kIvfFlat)) {
    return false;
  }
  if (dim == 0 || dim > kMaxDim) return false;
  if (!io::read_vec(in, points_, io::kMaxVecElems) ||
      !io::read_vec(in, group_offsets_, io::kMaxVecElems) ||
      !io::read_vec(in, group_rows_, io::kMaxVecElems) ||
      !io::read_vec(in, nodes_, io::kMaxVecElems) ||
      !io::read_vec(in, centroids_, io::kMaxVecElems) ||
      !io::read_vec(in, cell_offsets_, io::kMaxVecElems)) {
    clear();
    return false;
  }

  // Structural validation: every array length, range and child link is
  // re-checked so a crafted stream cannot cause out-of-bounds traversal
  // or non-termination later. Norms and node bounds are *recomputed*
  // from the point data rather than trusted from the stream.
  const auto reject = [this] {
    clear();
    return false;
  };
  dim_ = static_cast<std::size_t>(dim);
  if (points_.empty() || points_.size() % dim_ != 0) return reject();
  const std::size_t nu = points_.size() / dim_;
  if (!all_finite(points_.data(), points_.size())) return reject();
  if (group_rows_.size() != rows || rows == 0 || nu > rows) return reject();
  if (group_offsets_.size() != nu + 1 || group_offsets_.front() != 0 ||
      group_offsets_.back() != group_rows_.size()) {
    return reject();
  }
  for (std::size_t u = 0; u < nu; ++u) {
    if (group_offsets_[u + 1] <= group_offsets_[u]) return reject();  // empty/overlap
  }
  for (const std::uint32_t row : group_rows_) {
    if (row >= rows) return reject();
  }
  if (mode == static_cast<std::uint32_t>(KnnIndexMode::kBoundTree)) {
    if (!centroids_.empty() || !cell_offsets_.empty()) return reject();
    if (nodes_.empty() || nodes_.front().begin != 0 || nodes_.front().end != nu) {
      return reject();
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& node = nodes_[i];
      if (node.begin > node.end || node.end > nu) return reject();
      const bool leaf = node.left < 0 || node.right < 0;
      if (leaf) {
        if (node.left != -1 || node.right != -1) return reject();
        continue;
      }
      // Children follow their parent (preorder build), which bounds the
      // traversal; they must partition the parent's range exactly so a
      // loaded tree still covers every point.
      const auto left = static_cast<std::size_t>(node.left);
      const auto right = static_cast<std::size_t>(node.right);
      if (left <= i || right <= i || left >= nodes_.size() || right >= nodes_.size()) {
        return reject();
      }
      if (nodes_[left].begin != node.begin || nodes_[right].end != node.end ||
          nodes_[left].end != nodes_[right].begin) {
        return reject();
      }
    }
  } else {
    if (!nodes_.empty()) return reject();
    if (cell_offsets_.size() < 2 || cell_offsets_.front() != 0 ||
        cell_offsets_.back() != nu) {
      return reject();
    }
    for (std::size_t c = 0; c + 1 < cell_offsets_.size(); ++c) {
      if (cell_offsets_[c + 1] <= cell_offsets_[c]) return reject();
    }
    if (centroids_.size() != (cell_offsets_.size() - 1) * dim_) return reject();
    if (!all_finite(centroids_.data(), centroids_.size())) return reject();
  }

  config_ = {};
  config_.mode = static_cast<KnnIndexMode>(mode);
  config_.leaf_size = static_cast<std::size_t>(leaf_size);
  config_.ivf_nprobe = static_cast<std::size_t>(nprobe);
  config_.min_rows = static_cast<std::size_t>(min_rows);
  config_.seed = seed;
  recompute_derived();
  stats_.mode = config_.mode;
  stats_.rows = static_cast<std::size_t>(rows);
  stats_.unique_rows = nu;
  stats_.nodes = nodes_.size();
  for (const Node& node : nodes_) {
    if (node.left < 0) ++stats_.leaves;
  }
  stats_.clusters = cell_offsets_.empty() ? 0 : cell_offsets_.size() - 1;
  stats_.nprobe = std::max<std::size_t>(config_.ivf_nprobe, 1);
  stats_.exact = stats_.mode == KnnIndexMode::kBoundTree || stats_.nprobe >= stats_.clusters;
  return true;
}

}  // namespace mcb
