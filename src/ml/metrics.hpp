// Classification quality metrics (paper §V-B: F1-macro average, the mean
// of per-class F1 scores, each the harmonic mean of precision and recall).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace mcb {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t n_classes);

  /// Count one (truth, prediction) pair. Out-of-range labels are ignored.
  void add(Label truth, Label predicted) noexcept;
  void add_all(std::span<const Label> truth, std::span<const Label> predicted);
  void merge(const ConfusionMatrix& other);

  std::size_t n_classes() const noexcept { return n_; }
  std::uint64_t count(Label truth, Label predicted) const;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t support(Label cls) const;  ///< # samples whose truth == cls

  double accuracy() const noexcept;
  double precision(Label cls) const noexcept;  ///< 0 when undefined
  double recall(Label cls) const noexcept;
  double f1(Label cls) const noexcept;
  /// Macro-averaged F1 over all classes (the paper's headline metric).
  double f1_macro() const noexcept;

  /// Render with class names (row = truth, column = predicted).
  std::string render(const std::vector<std::string>& class_names) const;

 private:
  std::size_t n_;
  std::vector<std::uint64_t> cells_;  // truth * n_ + predicted
  std::uint64_t total_ = 0;
};

}  // namespace mcb
