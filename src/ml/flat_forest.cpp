#include "ml/flat_forest.hpp"

#include <limits>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "util/annotations.hpp"

namespace mcb {

void FlatForest::build(std::span<const DecisionTree> trees, const FeatureBinner& binner,
                       std::size_t n_classes) {
  roots_.clear();
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  proba_.clear();
  n_classes_ = n_classes;
  if (n_classes_ == 0) throw std::logic_error("flat forest: zero classes");

  std::size_t total_nodes = 0;
  std::size_t total_proba = 0;
  for (const auto& tree : trees) {
    total_nodes += tree.nodes().size();
    total_proba += tree.leaf_probas().size();
  }
  // Leaves are encoded as negative int32 left-children, so the node pool
  // and the proba table must both stay below 2^31.
  constexpr auto kMax = static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  if (total_nodes >= kMax || total_proba >= kMax) {
    throw std::logic_error("flat forest: forest too large to flatten");
  }
  roots_.reserve(trees.size());
  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  left_.reserve(total_nodes);
  right_.reserve(total_nodes);
  proba_.reserve(total_proba);

  for (const auto& tree : trees) {
    if (!tree.is_fitted() || tree.n_classes() != n_classes_) {
      throw std::logic_error("flat forest: unfitted tree or class-count mismatch");
    }
    const auto base = static_cast<std::int32_t>(left_.size());
    const auto proba_base = static_cast<std::int32_t>(proba_.size());
    roots_.push_back(static_cast<std::uint32_t>(base));
    for (const auto& node : tree.nodes()) {
      if (node.left < 0) {  // leaf
        feature_.push_back(0);
        threshold_.push_back(0.0F);
        left_.push_back(-(proba_base + static_cast<std::int32_t>(node.proba_offset)) - 1);
        right_.push_back(-1);
        continue;
      }
      const auto edges = binner.edges(node.feature);
      if (node.threshold >= edges.size()) {
        throw std::logic_error("flat forest: split threshold outside binner edges");
      }
      feature_.push_back(node.feature);
      threshold_.push_back(edges[node.threshold]);
      left_.push_back(base + node.left);
      right_.push_back(base + node.right);
    }
    const auto probas = tree.leaf_probas();
    proba_.insert(proba_.end(), probas.begin(), probas.end());
  }
}

MCB_HOT_PATH void FlatForest::accumulate_proba_block(FeatureView x, std::size_t row_begin,
                                                     std::size_t row_end,
                                                     double* probs) const {
  const std::uint32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const std::int32_t* left = left_.data();
  const std::int32_t* right = right_.data();
  // Tree-major: one tree's nodes stay resident while the block streams.
  for (const std::uint32_t root : roots_) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const float* row = x.data + r * x.cols;
      auto node = static_cast<std::int32_t>(root);
      std::int32_t l = left[node];
      while (l >= 0) {
        // !(x > t) matches bin code <= t exactly, NaN included (both left).
        node = !(row[feature[node]] > threshold[node]) ? l : right[node];
        l = left[node];
      }
      const float* leaf = proba_.data() + static_cast<std::size_t>(-l - 1);
      double* out = probs + (r - row_begin) * n_classes_;
      for (std::size_t c = 0; c < n_classes_; ++c) out[c] += leaf[c];
    }
  }
}

MCB_HOT_PATH void FlatForest::accumulate_proba(std::span<const float> row,
                                               double* probs) const {
  const FeatureView view{row.data(), 1, row.size()};
  accumulate_proba_block(view, 0, 1, probs);
}

std::size_t FlatForest::min_row_width() const noexcept {
  std::size_t width = 0;
  for (std::size_t i = 0; i < left_.size(); ++i) {
    if (left_[i] >= 0) {  // leaves never consult their feature slot
      width = std::max(width, static_cast<std::size_t>(feature_[i]) + 1);
    }
  }
  return width;
}

void FlatForest::save(std::ostream& out) const {
  io::write_header(out, io::kKindFlatForest);
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_vec(out, roots_);
  io::write_vec(out, feature_);
  io::write_vec(out, threshold_);
  io::write_vec(out, left_);
  io::write_vec(out, right_);
  io::write_vec(out, proba_);
}

bool FlatForest::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindFlatForest) return false;
  std::uint64_t n_classes = 0;
  if (!io::read_pod(in, n_classes) || n_classes == 0 || n_classes > 4096) return false;
  if (!io::read_vec(in, roots_) || !io::read_vec(in, feature_) ||
      !io::read_vec(in, threshold_) || !io::read_vec(in, left_) ||
      !io::read_vec(in, right_) || !io::read_vec(in, proba_)) {
    return false;
  }
  n_classes_ = static_cast<std::size_t>(n_classes);
  // Structural validation: consistent array lengths, in-range children
  // and leaf offsets, so a corrupt stream cannot cause out-of-bounds
  // traversal later.
  const std::size_t n = left_.size();
  if (feature_.size() != n || threshold_.size() != n || right_.size() != n) return false;
  if (proba_.size() % n_classes_ != 0) return false;
  for (const std::uint32_t root : roots_) {
    if (root >= n) return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (left_[i] < 0) {
      const auto offset = static_cast<std::size_t>(-left_[i] - 1);
      if (offset + n_classes_ > proba_.size()) return false;
    } else {
      // Children always follow their parent (the builder appends them
      // later), which also guarantees traversal terminates.
      if (static_cast<std::size_t>(left_[i]) >= n || right_[i] < 0 ||
          static_cast<std::size_t>(right_[i]) >= n ||
          left_[i] <= static_cast<std::int32_t>(i) ||
          right_[i] <= static_cast<std::int32_t>(i)) {
        return false;
      }
      // Internal nodes index into the caller's feature row; an
      // unbounded column from a crafted file is an out-of-bounds read
      // in accumulate_proba_block no caller can defend against.
      if (feature_[i] >= (1U << 20)) return false;
    }
  }
  return !roots_.empty();
}

}  // namespace mcb
