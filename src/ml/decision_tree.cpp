#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/serialize.hpp"

namespace mcb {

// ---------------------------------------------------------------- binner

void FeatureBinner::fit(FeatureView x, std::size_t max_bins) {
  max_bins = std::clamp<std::size_t>(max_bins, 2, 256);
  edges_.assign(x.cols, {});
  if (x.rows == 0) return;

  std::vector<float> column;
  for (std::size_t f = 0; f < x.cols; ++f) {
    column.resize(x.rows);
    for (std::size_t r = 0; r < x.rows; ++r) column[r] = x.data[r * x.cols + f];
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());

    auto& edges = edges_[f];
    if (column.size() <= 1) continue;  // constant feature: single bin
    if (column.size() <= max_bins) {
      // One bin per distinct value: edges at midpoints.
      edges.reserve(column.size() - 1);
      for (std::size_t i = 0; i + 1 < column.size(); ++i) {
        edges.push_back(0.5F * (column[i] + column[i + 1]));
      }
    } else {
      // Quantile edges over the distinct values.
      edges.reserve(max_bins - 1);
      for (std::size_t b = 1; b < max_bins; ++b) {
        const std::size_t pos =
            b * (column.size() - 1) / max_bins;
        const float edge = 0.5F * (column[pos] + column[pos + 1]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
}

std::uint8_t FeatureBinner::bin_value(std::size_t feature, float value) const {
  const auto& edges = edges_.at(feature);
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::uint8_t>(it - edges.begin());
}

std::vector<std::uint8_t> FeatureBinner::transform_column_major(FeatureView x) const {
  if (x.cols != edges_.size()) throw std::invalid_argument("binner: feature count mismatch");
  std::vector<std::uint8_t> codes(x.rows * x.cols);
  for (std::size_t f = 0; f < x.cols; ++f) {
    std::uint8_t* out = codes.data() + f * x.rows;
    const auto& edges = edges_[f];
    for (std::size_t r = 0; r < x.rows; ++r) {
      const float v = x.data[r * x.cols + f];
      const auto it = std::lower_bound(edges.begin(), edges.end(), v);
      out[r] = static_cast<std::uint8_t>(it - edges.begin());
    }
  }
  return codes;
}

void FeatureBinner::save(std::ostream& out) const {
  io::write_pod(out, static_cast<std::uint64_t>(edges_.size()));
  for (const auto& edges : edges_) io::write_vec(out, edges);
}

bool FeatureBinner::load(std::istream& in) {
  std::uint64_t n = 0;
  if (!io::read_pod(in, n) || n > (1ULL << 20)) return false;
  edges_.assign(n, {});
  for (auto& edges : edges_) {
    if (!io::read_vec(in, edges)) return false;
  }
  return true;
}

// ------------------------------------------------------------------ tree

namespace {

double gini_impurity(std::span<const std::uint32_t> counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct BuildFrame {
  std::size_t begin = 0;   // range into the row-index buffer
  std::size_t end = 0;
  std::size_t depth = 0;
  std::int32_t node = -1;  // index of the Node to fill in
};

}  // namespace

void DecisionTree::fit(const std::uint8_t* codes, std::size_t n_rows_total,
                       std::span<const std::uint32_t> rows, std::span<const Label> labels,
                       std::size_t n_features, std::size_t n_classes,
                       const TreeConfig& config, Rng& rng) {
  if (rows.empty()) throw std::invalid_argument("tree: empty training rows");
  n_classes_ = std::max<std::size_t>(n_classes, 1);
  nodes_.clear();
  proba_.clear();

  std::vector<std::uint32_t> index(rows.begin(), rows.end());
  const std::size_t max_features =
      config.max_features == 0 ? n_features : std::min(config.max_features, n_features);

  std::vector<std::uint32_t> feature_order(n_features);
  std::iota(feature_order.begin(), feature_order.end(), 0U);

  // Histogram buffer reused across nodes: 256 bins x n_classes.
  std::vector<std::uint32_t> hist(256 * n_classes_);
  std::vector<std::uint32_t> node_counts(n_classes_);
  std::vector<std::uint32_t> left_counts(n_classes_);

  const auto make_leaf = [this](std::span<const std::uint32_t> counts, std::int32_t node_id) {
    nodes_[static_cast<std::size_t>(node_id)].left = -1;
    nodes_[static_cast<std::size_t>(node_id)].right = -1;
    nodes_[static_cast<std::size_t>(node_id)].proba_offset =
        static_cast<std::uint32_t>(proba_.size());
    double total = 0.0;
    for (const auto c : counts) total += c;
    for (const auto c : counts) {
      proba_.push_back(total > 0.0 ? static_cast<float>(c / total) : 0.0F);
    }
  };

  std::vector<BuildFrame> stack;
  nodes_.emplace_back();
  stack.push_back({0, index.size(), 0, 0});

  while (!stack.empty()) {
    const BuildFrame frame = stack.back();
    stack.pop_back();
    const std::size_t n_node = frame.end - frame.begin;

    // Node class counts.
    std::fill(node_counts.begin(), node_counts.end(), 0U);
    for (std::size_t i = frame.begin; i < frame.end; ++i) {
      ++node_counts[static_cast<std::size_t>(labels[index[i]])];
    }
    const double node_impurity = gini_impurity(node_counts, static_cast<double>(n_node));

    const bool is_pure = node_impurity <= 1e-12;
    if (is_pure || frame.depth >= config.max_depth || n_node < config.min_samples_split ||
        n_node < 2 * config.min_samples_leaf) {
      make_leaf(node_counts, frame.node);
      continue;
    }

    // Sample candidate features without replacement (partial shuffle).
    for (std::size_t i = 0; i < max_features; ++i) {
      const std::size_t j = i + rng.bounded(n_features - i);
      std::swap(feature_order[i], feature_order[j]);
    }

    double best_gain = config.min_impurity_decrease;
    std::uint32_t best_feature = 0;
    std::uint8_t best_threshold = 0;

    for (std::size_t fi = 0; fi < max_features; ++fi) {
      const std::uint32_t f = feature_order[fi];
      const std::uint8_t* col = codes + static_cast<std::size_t>(f) * n_rows_total;

      std::fill(hist.begin(), hist.end(), 0U);
      std::uint8_t max_code = 0;
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        const std::uint32_t row = index[i];
        const std::uint8_t code = col[row];
        ++hist[static_cast<std::size_t>(code) * n_classes_ +
               static_cast<std::size_t>(labels[row])];
        max_code = std::max(max_code, code);
      }
      if (max_code == 0) continue;  // single bin, nothing to split

      // Scan split positions: left = codes <= t.
      std::fill(left_counts.begin(), left_counts.end(), 0U);
      std::size_t n_left = 0;
      for (std::size_t t = 0; t < max_code; ++t) {
        for (std::size_t c = 0; c < n_classes_; ++c) {
          const std::uint32_t add = hist[t * n_classes_ + c];
          left_counts[c] += add;
          n_left += add;
        }
        const std::size_t n_right = n_node - n_left;
        if (n_left < config.min_samples_leaf || n_right < config.min_samples_leaf) continue;

        double right_sum_sq = 0.0, left_sum_sq = 0.0;
        for (std::size_t c = 0; c < n_classes_; ++c) {
          const double lc = left_counts[c];
          const double rc = static_cast<double>(node_counts[c]) - lc;
          left_sum_sq += lc * lc;
          right_sum_sq += rc * rc;
        }
        const double nl = static_cast<double>(n_left);
        const double nr = static_cast<double>(n_right);
        const double gini_left = 1.0 - left_sum_sq / (nl * nl);
        const double gini_right = 1.0 - right_sum_sq / (nr * nr);
        const double weighted =
            (nl * gini_left + nr * gini_right) / static_cast<double>(n_node);
        const double gain = node_impurity - weighted;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = static_cast<std::uint8_t>(t);
        }
      }
    }

    if (best_gain <= config.min_impurity_decrease) {
      make_leaf(node_counts, frame.node);
      continue;
    }

    // Partition rows in place: left = code <= threshold.
    const std::uint8_t* col = codes + static_cast<std::size_t>(best_feature) * n_rows_total;
    auto mid_it = std::partition(
        index.begin() + static_cast<std::ptrdiff_t>(frame.begin),
        index.begin() + static_cast<std::ptrdiff_t>(frame.end),
        [col, best_threshold](std::uint32_t row) { return col[row] <= best_threshold; });
    const auto mid = static_cast<std::size_t>(mid_it - index.begin());
    if (mid == frame.begin || mid == frame.end) {
      make_leaf(node_counts, frame.node);  // degenerate split (shouldn't happen)
      continue;
    }

    const auto left_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    const auto right_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    Node& node = nodes_[static_cast<std::size_t>(frame.node)];
    node.left = left_id;
    node.right = right_id;
    node.feature = best_feature;
    node.threshold = best_threshold;

    stack.push_back({frame.begin, mid, frame.depth + 1, left_id});
    stack.push_back({mid, frame.end, frame.depth + 1, right_id});
  }
}

std::size_t DecisionTree::leaf_count() const noexcept {
  std::size_t leaves = 0;
  for (const auto& node : nodes_) {
    if (node.left < 0) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.left >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}

void DecisionTree::accumulate_proba(const std::uint8_t* codes_row, double* probs) const {
  const Node* node = &nodes_[0];
  while (node->left >= 0) {
    const std::uint8_t code = codes_row[node->feature];
    node = &nodes_[static_cast<std::size_t>(code <= node->threshold ? node->left : node->right)];
  }
  const float* leaf = proba_.data() + node->proba_offset;
  for (std::size_t c = 0; c < n_classes_; ++c) probs[c] += leaf[c];
}

Label DecisionTree::predict_binned(const std::uint8_t* codes_row) const {
  const Node* node = &nodes_[0];
  while (node->left >= 0) {
    const std::uint8_t code = codes_row[node->feature];
    node = &nodes_[static_cast<std::size_t>(code <= node->threshold ? node->left : node->right)];
  }
  const float* leaf = proba_.data() + node->proba_offset;
  Label best = 0;
  for (std::size_t c = 1; c < n_classes_; ++c) {
    if (leaf[c] > leaf[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
  }
  return best;
}

void DecisionTree::save(std::ostream& out) const {
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_vec(out, nodes_);
  io::write_vec(out, proba_);
}

bool DecisionTree::load(std::istream& in) {
  std::uint64_t n_classes = 0;
  if (!io::read_pod(in, n_classes) || n_classes == 0 || n_classes > 4096) return false;
  n_classes_ = static_cast<std::size_t>(n_classes);
  if (!io::read_vec(in, nodes_) || !io::read_vec(in, proba_)) return false;
  return !nodes_.empty();
}

}  // namespace mcb
