#include "ml/dataset.hpp"

#include <algorithm>

namespace mcb {

FeatureMatrix FeatureMatrix::gather(std::span<const std::size_t> indices) const {
  FeatureMatrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i));
  }
  return out;
}

}  // namespace mcb
