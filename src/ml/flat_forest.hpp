// Flattened Random-Forest representation for batched inference.
//
// A fitted forest is a vector of DecisionTrees, each a vector of 16-byte
// Node structs walked recursively per sample. That layout is fine for
// training but leaves inference throughput on the table: every sample
// re-bins all features (a lower_bound per feature) and then pointer-hops
// through per-tree node vectors with unpredictable branches.
//
// FlatForest rebuilds the fitted trees into one contiguous
// structure-of-arrays node pool (feature_idx[], threshold[], left[],
// right[], leaf-proba table) with two properties:
//
//  * Thresholds are resolved to *raw float* edge values at build time:
//    training decides "go left when bin code <= t", and because codes
//    come from lower_bound over the binner's ascending edge array,
//    "code <= t" is exactly "!(x > edges[feature][t])" on the raw
//    feature value. Batched prediction therefore skips binning entirely
//    (the dominant per-row cost of the scalar path) and still takes
//    bit-identical left/right decisions — including NaN inputs, which
//    bin to code 0 (left) and which !(x > t) also sends left.
//  * Traversal is iterative and branch-light: leaves are encoded as
//    negative left-child values carrying the proba-table offset, so the
//    inner loop is a single conditional-move chase over flat arrays.
//    Row blocks are walked tree-major so a tree's nodes stay hot in
//    cache across the whole block.
//
// Per-row class-probability sums accumulate in tree order, so results
// are bit-identical to the scalar DecisionTree::accumulate_proba path
// (equivalence is asserted by tests/test_fastpath.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace mcb {

class FlatForest {
 public:
  /// Rebuild from fitted trees + the binner that produced their codes.
  /// Throws std::logic_error when a tree references a feature/threshold
  /// the binner has no edge for (i.e. trees and binner do not match).
  void build(std::span<const DecisionTree> trees, const FeatureBinner& binner,
             std::size_t n_classes);

  bool empty() const noexcept { return roots_.empty(); }
  std::size_t tree_count() const noexcept { return roots_.size(); }
  std::size_t node_count() const noexcept { return left_.size(); }
  std::size_t n_classes() const noexcept { return n_classes_; }

  /// One more than the widest feature column any internal node
  /// consults: rows passed to accumulate_proba must be at least this
  /// wide. Callers that load foreign model files (rather than building
  /// from their own trees) must size queries by this, not assume the
  /// encoder width.
  std::size_t min_row_width() const noexcept;

  /// Accumulate per-tree leaf distributions for a block of raw feature
  /// rows into probs[row * n_classes() + c] (+=; callers zero first and
  /// divide by tree_count() for the forest average). `x` must have at
  /// least as many columns as any feature index seen in training.
  void accumulate_proba_block(FeatureView x, std::size_t row_begin, std::size_t row_end,
                              double* probs) const;

  /// Single raw-feature row convenience (probs has n_classes() slots).
  void accumulate_proba(std::span<const float> row, double* probs) const;

  void save(std::ostream& out) const;
  bool load(std::istream& in);

 private:
  std::vector<std::uint32_t> roots_;     ///< node index of each tree's root
  std::vector<std::uint32_t> feature_;   ///< per node: feature column
  std::vector<float> threshold_;         ///< per node: go left when !(x > t)
  std::vector<std::int32_t> left_;       ///< child index; < 0 encodes a leaf:
                                         ///< proba offset == -left - 1
  std::vector<std::int32_t> right_;
  std::vector<float> proba_;             ///< leaf distributions, n_classes each
  std::size_t n_classes_ = 0;
};

}  // namespace mcb
