#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

RandomForestClassifier::RandomForestClassifier(RandomForestConfig config)
    : config_(config) {
  if (config_.n_trees == 0) config_.n_trees = 1;
}

void RandomForestClassifier::fit(FeatureView x, std::span<const Label> y) {
  if (x.rows != y.size()) throw std::invalid_argument("rf: rows/labels mismatch");
  if (x.rows == 0) throw std::invalid_argument("rf: empty training set");
  n_features_ = x.cols;
  n_classes_ = 0;
  for (const Label l : y) {
    if (l < 0) throw std::invalid_argument("rf: negative label");
    n_classes_ = std::max(n_classes_, static_cast<std::size_t>(l) + 1);
  }

  binner_ = FeatureBinner();
  binner_.fit(x, config_.max_bins);
  const std::vector<std::uint8_t> codes = binner_.transform_column_major(x);

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(x.cols)))));
  }

  trees_.assign(config_.n_trees, DecisionTree());
  const std::size_t n = x.rows;
  Rng seeder(config_.seed);
  std::vector<std::uint64_t> tree_seeds(config_.n_trees);
  for (auto& s : tree_seeds) s = seeder.next();

  std::vector<Label> labels(y.begin(), y.end());
  parallel_for_each(
      train_pool_, 0, config_.n_trees,
      [&](std::size_t t) {
        Rng rng(tree_seeds[t]);
        std::vector<std::uint32_t> rows(n);
        if (config_.bootstrap) {
          for (auto& r : rows) r = static_cast<std::uint32_t>(rng.bounded(n));
        } else {
          for (std::size_t i = 0; i < n; ++i) rows[i] = static_cast<std::uint32_t>(i);
        }
        trees_[t].fit(codes.data(), n, rows, labels, n_features_, n_classes_, tree_config,
                      rng);
      },
      /*grain=*/1);
  flat_.build(trees_, binner_, n_classes_);
}

namespace {

std::vector<Label> argmax_rows(const std::vector<double>& probs, std::size_t rows,
                               std::size_t n_classes) {
  std::vector<Label> out(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = probs.data() + r * n_classes;
    Label best = 0;
    for (std::size_t c = 1; c < n_classes; ++c) {
      if (row[c] > row[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
    }
    out[r] = best;
  }
  return out;
}

}  // namespace

std::vector<double> RandomForestClassifier::predict_proba(FeatureView x,
                                                          ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("rf: predict before fit");
  if (x.cols != n_features_) throw std::invalid_argument("rf: feature dimension mismatch");

  // Batched fast path: row blocks through the flattened forest on raw
  // float features — no per-row binning pass.
  std::vector<double> probs(x.rows * n_classes_, 0.0);
  const double inv = 1.0 / static_cast<double>(trees_.size());
  parallel_for(
      pool, 0, x.rows,
      [&](std::size_t begin, std::size_t end) {
        double* block = probs.data() + begin * n_classes_;
        flat_.accumulate_proba_block(x, begin, end, block);
        for (std::size_t i = 0; i < (end - begin) * n_classes_; ++i) block[i] *= inv;
      },
      /*grain=*/64);
  return probs;
}

std::vector<Label> RandomForestClassifier::predict(FeatureView x, ThreadPool* pool) const {
  return argmax_rows(predict_proba(x, pool), x.rows, n_classes_);
}

std::vector<double> RandomForestClassifier::predict_proba_scalar(FeatureView x,
                                                                 ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("rf: predict before fit");
  if (x.cols != n_features_) throw std::invalid_argument("rf: feature dimension mismatch");

  // Bin the query batch with the training binner; row-major codes here
  // because prediction walks one sample across features.
  std::vector<std::uint8_t> codes(x.rows * x.cols);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t r) {
        std::uint8_t* row = codes.data() + r * x.cols;
        const auto sample = x.row(r);
        for (std::size_t f = 0; f < x.cols; ++f) row[f] = binner_.bin_value(f, sample[f]);
      },
      /*grain=*/32);

  std::vector<double> probs(x.rows * n_classes_, 0.0);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t r) {
        double* out = probs.data() + r * n_classes_;
        const std::uint8_t* row = codes.data() + r * x.cols;
        for (const auto& tree : trees_) tree.accumulate_proba(row, out);
        const double inv = 1.0 / static_cast<double>(trees_.size());
        for (std::size_t c = 0; c < n_classes_; ++c) out[c] *= inv;
      },
      /*grain=*/16);
  return probs;
}

std::vector<Label> RandomForestClassifier::predict_scalar(FeatureView x,
                                                          ThreadPool* pool) const {
  return argmax_rows(predict_proba_scalar(x, pool), x.rows, n_classes_);
}

bool RandomForestClassifier::save(std::ostream& out) const {
  // An unfitted forest has no trees; silently writing an empty model
  // that load() would then reject is a trap for callers (mirrors the
  // same guard in KnnClassifier::save).
  if (!is_fitted()) return false;
  io::write_header(out, io::kKindRandomForest);
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_pod(out, static_cast<std::uint64_t>(n_features_));
  io::write_pod(out, static_cast<std::uint64_t>(trees_.size()));
  binner_.save(out);
  for (const auto& tree : trees_) tree.save(out);
  return static_cast<bool>(out);
}

bool RandomForestClassifier::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindRandomForest) return false;
  std::uint64_t n_classes = 0, n_features = 0, n_trees = 0;
  if (!io::read_pod(in, n_classes) || !io::read_pod(in, n_features) ||
      !io::read_pod(in, n_trees) || n_trees == 0 || n_trees > (1ULL << 20)) {
    return false;
  }
  if (!binner_.load(in)) return false;
  flat_ = FlatForest();
  trees_.assign(n_trees, DecisionTree());
  for (auto& tree : trees_) {
    if (!tree.load(in)) return false;
  }
  n_classes_ = static_cast<std::size_t>(n_classes);
  n_features_ = static_cast<std::size_t>(n_features);
  // Rebuild the batched-inference representation; a stream whose trees
  // and binner disagree is malformed, not a crash.
  try {
    flat_.build(trees_, binner_, n_classes_);
  } catch (const std::exception&) {  // logic_error or out-of-range feature
    trees_.clear();
    return false;
  }
  return true;
}

}  // namespace mcb
