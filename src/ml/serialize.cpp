#include "ml/serialize.hpp"

namespace mcb::io {

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_string(std::istream& in, std::string& s, std::uint64_t max_len) {
  std::uint64_t n = 0;
  if (!read_pod(in, n) || n > max_len) return false;
  s.resize(n);
  in.read(s.data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

void write_header(std::ostream& out, std::uint32_t model_kind) {
  write_pod(out, kModelMagic);
  write_pod(out, kFormatVersion);
  write_pod(out, model_kind);
}

bool read_header(std::istream& in, std::uint32_t& model_kind) {
  std::uint32_t magic = 0, version = 0;
  if (!read_pod(in, magic) || magic != kModelMagic) return false;
  if (!read_pod(in, version) || version != kFormatVersion) return false;
  return read_pod(in, model_kind);
}

}  // namespace mcb::io
