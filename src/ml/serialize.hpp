// Binary serialization primitives for model persistence (the repo's
// substitute for skops.io). Little-endian PODs with length-prefixed
// vectors/strings; every model file begins with a 4-byte magic and a
// format version so the registry can reject foreign or stale files.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace mcb::io {

inline constexpr std::uint32_t kModelMagic = 0x4D43424DU;  // "MCBM"
inline constexpr std::uint32_t kFormatVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& vec) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(out, static_cast<std::uint64_t>(vec.size()));
  if (!vec.empty()) {
    out.write(reinterpret_cast<const char*>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(T)));
  }
}

template <typename T>
bool read_vec(std::istream& in, std::vector<T>& vec, std::uint64_t max_elems = (1ULL << 32)) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint64_t n = 0;
  if (!read_pod(in, n) || n > max_elems) return false;
  vec.resize(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(vec.data()), static_cast<std::streamsize>(n * sizeof(T)));
  }
  return static_cast<bool>(in);
}

void write_string(std::ostream& out, const std::string& s);
bool read_string(std::istream& in, std::string& s, std::uint64_t max_len = (1ULL << 24));

/// Write magic + format version + a model-kind tag.
void write_header(std::ostream& out, std::uint32_t model_kind);
/// Validate magic/version and return the model-kind tag via out-param.
bool read_header(std::istream& in, std::uint32_t& model_kind);

inline constexpr std::uint32_t kKindKnn = 1;
inline constexpr std::uint32_t kKindRandomForest = 2;
inline constexpr std::uint32_t kKindBaseline = 3;
inline constexpr std::uint32_t kKindFlatForest = 4;
// 5 was silently colliding with kKindFlatForest when KnnRegressor kept a
// private tag of 4; all kinds now live here so collisions are impossible.
inline constexpr std::uint32_t kKindKnnRegressor = 5;
inline constexpr std::uint32_t kKindKnnIndex = 6;

/// Upper bound on elements accepted for any single model vector. read_vec
/// resizes before reading, so without a cap a crafted 8-byte length prefix
/// forces a multi-GB allocation; 2^28 elements (1 GiB of floats) is far
/// beyond any model this repo produces while keeping worst-case
/// allocations bounded for the fuzz harness.
inline constexpr std::uint64_t kMaxVecElems = 1ULL << 28;

}  // namespace mcb::io
