// The paper's comparison baseline (§V-C a): a lookup table mapping the
// tuple (job name, #cores requested) to a memory/compute-bound label —
// "a KNN with k = 1 on the features job name, #cores requested". The
// table keeps per-key class counts so repeated training observations
// vote; unseen keys fall back to the global majority class.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/dataset.hpp"

namespace mcb {

class LookupBaseline {
 public:
  struct Key {
    std::string job_name;
    std::uint32_t cores_requested = 0;
  };

  explicit LookupBaseline(std::size_t n_classes = 2);

  /// Replace the table with counts from the given training window
  /// (matches the online algorithm's full retrain semantics).
  void fit(std::span<const Key> keys, std::span<const Label> labels);

  bool is_fitted() const noexcept { return total_ > 0; }
  std::size_t n_classes() const noexcept { return n_classes_; }
  std::size_t table_size() const noexcept { return table_.size(); }

  Label predict_one(const Key& key) const;
  std::vector<Label> predict(std::span<const Key> keys) const;

  /// Fraction of predictions that fell back to the global majority.
  double last_fallback_rate() const noexcept { return last_fallback_rate_; }

  bool save(std::ostream& out) const;
  bool load(std::istream& in);

 private:
  static std::string encode_key(const Key& key);

  std::size_t n_classes_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> table_;
  std::vector<std::uint64_t> global_counts_;
  std::uint64_t total_ = 0;
  mutable double last_fallback_rate_ = 0.0;
};

}  // namespace mcb
