// k-Nearest-Neighbors regressor — the paper's §VI future-work claim:
// "the KNN finds the most similar jobs regardless of the target feature,
// hence we can easily adapt the framework for the prediction of multiple
// features without having to rely on different predictive models."
// Predicting a job's duration or power consumption before execution is
// the same neighbor search as the memory/compute classifier with the
// vote replaced by a (optionally distance-weighted) mean of the
// neighbors' target values.
//
// The neighbor search shares the classifier's machinery outright: the
// tiled tile_dots kernel, the TopK tie-break (lower row id wins on equal
// distance) and the pruned spatial index, so classifier and regressor
// pick identical neighbor sets for identical data by construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/knn_index.hpp"

namespace mcb {

class ThreadPool;

struct KnnRegressorConfig {
  std::size_t k = 5;
  bool distance_weighted = false;  ///< 1/d weights instead of uniform mean
  /// Spatial-index knobs; mode = kNone forces the brute-force scan.
  KnnIndexConfig index;
};

class KnnRegressor {
 public:
  explicit KnnRegressor(KnnRegressorConfig config = {});

  void fit(FeatureView x, std::span<const double> y);
  bool is_fitted() const noexcept { return !targets_.empty(); }
  std::size_t train_size() const noexcept { return targets_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  const KnnRegressorConfig& config() const noexcept { return config_; }

  /// The spatial index (ready() is false when the scan is in use).
  const KnnIndex& index() const noexcept { return index_; }

  double predict_one(std::span<const float> query) const;
  std::vector<double> predict(FeatureView x, ThreadPool* pool = nullptr) const;

  bool save(std::ostream& out) const;
  bool load(std::istream& in);

 private:
  void rebuild_index();

  KnnRegressorConfig config_;
  std::size_t dim_ = 0;
  std::vector<float> train_data_;
  std::vector<float> train_norms_;
  std::vector<double> targets_;
  KnnIndex index_;
};

/// Regression quality metrics for the future-work benches.
struct RegressionMetrics {
  double mae = 0.0;   ///< mean absolute error
  double mape = 0.0;  ///< mean absolute percentage error (targets > 0 only)
  double r2 = 0.0;    ///< coefficient of determination
  std::size_t n = 0;
};

RegressionMetrics evaluate_regression(std::span<const double> truth,
                                      std::span<const double> predicted);

}  // namespace mcb
