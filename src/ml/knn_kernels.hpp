// Shared distance kernels for the KNN scan and the spatial index.
//
// tile_dots is the deterministic 4-accumulator dot kernel from the PR 3
// fast path (see knn.cpp header comment for the vectorization
// rationale). It lives here so the tiled scan, the bounding-box tree's
// leaf sweep and the IVF cell probe all compute *bitwise identical*
// distances for the same row bytes — the precondition for the shared
// TopK tie-break to make their results interchangeable.
#pragma once

#include <cstddef>

#include "util/annotations.hpp"

namespace mcb {

/// Training rows per tile of the p=2 fast scan: distances for a whole
/// tile are materialized into a small stack buffer before the top-k
/// insertion runs over them.
inline constexpr std::size_t kScanTile = 128;

/// Dot of one query against `n_rows` consecutive training rows. Four
/// independent accumulators break the FP-add dependence chain (float
/// addition is not associative, so the compiler cannot do this on its
/// own); the fixed combine order keeps results deterministic across
/// compilers and runs.
MCB_HOT_PATH inline void tile_dots(const float* rows, std::size_t n_rows, std::size_t dim,
                                   const float* q, float* out) {
  for (std::size_t i = 0; i < n_rows; ++i) {
    const float* row = rows + i * dim;
    float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
    std::size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      acc0 += row[j] * q[j];
      acc1 += row[j + 1] * q[j + 1];
      acc2 += row[j + 2] * q[j + 2];
      acc3 += row[j + 3] * q[j + 3];
    }
    for (; j < dim; ++j) acc0 += row[j] * q[j];
    out[i] = (acc0 + acc1) + (acc2 + acc3);
  }
}

/// ||row||^2 in double, rounded to float — the exact expression fit()
/// and the index both use, so per-row norms are bitwise identical
/// wherever they are computed.
MCB_HOT_PATH inline float row_norm_sq(const float* row, std::size_t dim) {
  double n2 = 0.0;
  for (std::size_t j = 0; j < dim; ++j) n2 += static_cast<double>(row[j]) * row[j];
  return static_cast<float>(n2);
}

}  // namespace mcb
