#include "ml/baseline.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/serialize.hpp"

namespace mcb {

LookupBaseline::LookupBaseline(std::size_t n_classes)
    : n_classes_(std::max<std::size_t>(n_classes, 2)),
      global_counts_(n_classes_, 0) {}

std::string LookupBaseline::encode_key(const Key& key) {
  return key.job_name + '\x1f' + std::to_string(key.cores_requested);
}

void LookupBaseline::fit(std::span<const Key> keys, std::span<const Label> labels) {
  if (keys.size() != labels.size()) throw std::invalid_argument("baseline: size mismatch");
  table_.clear();
  global_counts_.assign(n_classes_, 0);
  total_ = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Label l = labels[i];
    if (l < 0 || static_cast<std::size_t>(l) >= n_classes_) {
      throw std::invalid_argument("baseline: label out of range");
    }
    auto [it, inserted] =
        table_.try_emplace(encode_key(keys[i]), std::vector<std::uint32_t>(n_classes_, 0));
    (void)inserted;
    ++it->second[static_cast<std::size_t>(l)];
    ++global_counts_[static_cast<std::size_t>(l)];
    ++total_;
  }
}

Label LookupBaseline::predict_one(const Key& key) const {
  const auto majority = [](std::span<const std::uint32_t> counts) {
    Label best = 0;
    for (std::size_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
    }
    return best;
  };
  const auto it = table_.find(encode_key(key));
  if (it != table_.end()) return majority(it->second);

  Label best = 0;
  for (std::size_t c = 1; c < global_counts_.size(); ++c) {
    if (global_counts_[c] > global_counts_[static_cast<std::size_t>(best)]) {
      best = static_cast<Label>(c);
    }
  }
  return best;
}

std::vector<Label> LookupBaseline::predict(std::span<const Key> keys) const {
  std::vector<Label> out;
  out.reserve(keys.size());
  std::size_t fallbacks = 0;
  for (const Key& key : keys) {
    if (table_.find(encode_key(key)) == table_.end()) ++fallbacks;
    out.push_back(predict_one(key));
  }
  last_fallback_rate_ =
      keys.empty() ? 0.0 : static_cast<double>(fallbacks) / static_cast<double>(keys.size());
  return out;
}

bool LookupBaseline::save(std::ostream& out) const {
  io::write_header(out, io::kKindBaseline);
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_pod(out, total_);
  io::write_vec(out, global_counts_);
  io::write_pod(out, static_cast<std::uint64_t>(table_.size()));
  for (const auto& [key, counts] : table_) {
    io::write_string(out, key);
    io::write_vec(out, counts);
  }
  return static_cast<bool>(out);
}

bool LookupBaseline::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindBaseline) return false;
  std::uint64_t n_classes = 0, entries = 0;
  if (!io::read_pod(in, n_classes) || n_classes < 2 || n_classes > 4096) return false;
  if (!io::read_pod(in, total_)) return false;
  if (!io::read_vec(in, global_counts_)) return false;
  if (!io::read_pod(in, entries) || entries > (1ULL << 28)) return false;
  n_classes_ = static_cast<std::size_t>(n_classes);
  table_.clear();
  table_.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::string key;
    std::vector<std::uint32_t> counts;
    if (!io::read_string(in, key) || !io::read_vec(in, counts)) return false;
    table_.emplace(std::move(key), std::move(counts));
  }
  return true;
}

}  // namespace mcb
