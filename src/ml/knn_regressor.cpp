#include "ml/knn_regressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/knn_kernels.hpp"
#include "ml/serialize.hpp"
#include "ml/top_k.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

namespace {
constexpr std::uint64_t kMaxDim = 1ULL << 24;
}  // namespace

KnnRegressor::KnnRegressor(KnnRegressorConfig config) : config_(config) {
  if (config_.k == 0) config_.k = 1;
}

void KnnRegressor::fit(FeatureView x, std::span<const double> y) {
  if (x.rows != y.size()) throw std::invalid_argument("knn_regressor: rows/targets mismatch");
  if (x.rows == 0) throw std::invalid_argument("knn_regressor: empty training set");
  dim_ = x.cols;
  train_data_.assign(x.data, x.data + x.rows * x.cols);
  targets_.assign(y.begin(), y.end());
  train_norms_.resize(x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    train_norms_[i] = row_norm_sq(train_data_.data() + i * dim_, dim_);
  }
  rebuild_index();
}

void KnnRegressor::rebuild_index() {
  index_.clear();
  if (config_.index.mode == KnnIndexMode::kNone) return;
  if (targets_.size() < config_.index.min_rows) return;
  index_.build(FeatureView{train_data_.data(), targets_.size(), dim_}, config_.index);
}

double KnnRegressor::predict_one(std::span<const float> query) const {
  const std::size_t n = targets_.size();
  const std::size_t k = std::min(config_.k, n);
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<double> dist;

  // Neighbor distances use the scan's query-norm-free key
  // ||x||^2 - 2 q.x (the query norm is constant across rows, so the
  // ranking is unchanged); it is added back below only where the true
  // squared distance matters, in the 1/d weights.
  if (!(index_.ready() && index_.search(query, config_.k, idx, dist))) {
    TopK top(idx, dist, k);
    float dots[kScanTile];
    for (std::size_t base = 0; base < n; base += kScanTile) {
      const std::size_t rows = std::min(kScanTile, n - base);
      tile_dots(train_data_.data() + base * dim_, rows, dim_, query.data(), dots);
      for (std::size_t i = 0; i < rows; ++i) {
        const double d =
            static_cast<double>(train_norms_[base + i]) - 2.0 * static_cast<double>(dots[i]);
        top.consider(base + i, d);
      }
    }
  }

  if (!config_.distance_weighted) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const std::size_t i : idx) {
      if (i == kTopKNoRow) continue;  // no admissible neighbor (NaN query)
      sum += targets_[i];
      ++count;
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  // Inverse-distance weighting; exact matches dominate (epsilon floor).
  double query_norm = 0.0;
  for (const float q : query) query_norm += static_cast<double>(q) * q;
  double weighted = 0.0, total_weight = 0.0;
  for (std::size_t j = 0; j < idx.size(); ++j) {
    if (idx[j] == kTopKNoRow) continue;
    const double w = 1.0 / (std::sqrt(std::max(dist[j] + query_norm, 0.0)) + 1e-9);
    weighted += w * targets_[idx[j]];
    total_weight += w;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

std::vector<double> KnnRegressor::predict(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn_regressor: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn_regressor: dimension mismatch");
  std::vector<double> out(x.rows, 0.0);
  parallel_for_each(
      pool, 0, x.rows, [&](std::size_t i) { out[i] = predict_one(x.row(i)); },
      /*grain=*/8);
  return out;
}

bool KnnRegressor::save(std::ostream& out) const {
  if (!is_fitted()) return false;
  io::write_header(out, io::kKindKnnRegressor);
  io::write_pod(out, static_cast<std::uint64_t>(config_.k));
  // Serialized as uint8_t: reading an arbitrary file byte into a C++
  // bool is UB for values other than 0/1 (UBSan "invalid bool load").
  io::write_pod(out, static_cast<std::uint8_t>(config_.distance_weighted ? 1 : 0));
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_vec(out, train_data_);
  io::write_vec(out, targets_);
  return static_cast<bool>(out);
}

bool KnnRegressor::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnnRegressor) return false;
  std::uint64_t k = 0, dim = 0;
  std::uint8_t distance_weighted = 0;
  if (!io::read_pod(in, k) || !io::read_pod(in, distance_weighted) || !io::read_pod(in, dim)) {
    return false;
  }
  // k == 0 from a file would build an empty TopK (dist_.back() UB) and
  // divide by zero in the unweighted mean; the ctor clamp does not
  // protect this path. The flag byte must be a canonical bool.
  if (k == 0) return false;
  if (distance_weighted > 1) return false;
  if (dim == 0 || dim > kMaxDim) return false;
  std::vector<float> train_data;
  std::vector<double> targets;
  if (!io::read_vec(in, train_data, io::kMaxVecElems) ||
      !io::read_vec(in, targets, io::kMaxVecElems)) {
    return false;
  }
  if (targets.empty() || targets.size() * static_cast<std::size_t>(dim) != train_data.size()) {
    return false;
  }
  config_.k = static_cast<std::size_t>(k);
  config_.distance_weighted = distance_weighted != 0;
  dim_ = static_cast<std::size_t>(dim);
  train_data_ = std::move(train_data);
  targets_ = std::move(targets);
  train_norms_.resize(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    train_norms_[i] = row_norm_sq(train_data_.data() + i * dim_, dim_);
  }
  rebuild_index();
  return true;
}

RegressionMetrics evaluate_regression(std::span<const double> truth,
                                      std::span<const double> predicted) {
  RegressionMetrics metrics;
  const std::size_t n = std::min(truth.size(), predicted.size());
  if (n == 0) return metrics;
  double abs_sum = 0.0, pct_sum = 0.0, mean = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    abs_sum += std::abs(truth[i] - predicted[i]);
    if (truth[i] > 0.0) {
      pct_sum += std::abs(truth[i] - predicted[i]) / truth[i];
      ++pct_n;
    }
    mean += truth[i];
  }
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  metrics.mae = abs_sum / static_cast<double>(n);
  metrics.mape = pct_n > 0 ? pct_sum / static_cast<double>(pct_n) : 0.0;
  metrics.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  metrics.n = n;
  return metrics;
}

}  // namespace mcb
