#include "ml/knn_regressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

namespace io {
inline constexpr std::uint32_t kKindKnnRegressor = 4;
}  // namespace io

KnnRegressor::KnnRegressor(KnnRegressorConfig config) : config_(config) {
  if (config_.k == 0) config_.k = 1;
}

void KnnRegressor::fit(FeatureView x, std::span<const double> y) {
  if (x.rows != y.size()) throw std::invalid_argument("knn_regressor: rows/targets mismatch");
  if (x.rows == 0) throw std::invalid_argument("knn_regressor: empty training set");
  dim_ = x.cols;
  train_data_.assign(x.data, x.data + x.rows * x.cols);
  targets_.assign(y.begin(), y.end());
  train_norms_.resize(x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
}

double KnnRegressor::predict_one(std::span<const float> query) const {
  const std::size_t n = targets_.size();
  const std::size_t k = std::min(config_.k, n);
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<double> dist;
  idx.assign(k, 0);
  dist.assign(k, std::numeric_limits<double>::infinity());

  const auto consider = [&](std::size_t row, double d) {
    if (d >= dist.back()) return;
    std::size_t pos = k - 1;
    while (pos > 0 && dist[pos - 1] > d) {
      dist[pos] = dist[pos - 1];
      idx[pos] = idx[pos - 1];
      --pos;
    }
    dist[pos] = d;
    idx[pos] = row;
  };

  double query_norm = 0.0;
  for (const float q : query) query_norm += static_cast<double>(q) * q;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = train_data_.data() + i * dim_;
    float dot = 0.0F;
    for (std::size_t j = 0; j < dim_; ++j) dot += row[j] * query[j];
    consider(i, query_norm + static_cast<double>(train_norms_[i]) -
                    2.0 * static_cast<double>(dot));
  }

  if (!config_.distance_weighted) {
    double sum = 0.0;
    for (const std::size_t i : idx) sum += targets_[i];
    return sum / static_cast<double>(k);
  }
  // Inverse-distance weighting; exact matches dominate (epsilon floor).
  double weighted = 0.0, total_weight = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double w = 1.0 / (std::sqrt(std::max(dist[j], 0.0)) + 1e-9);
    weighted += w * targets_[idx[j]];
    total_weight += w;
  }
  return weighted / total_weight;
}

std::vector<double> KnnRegressor::predict(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn_regressor: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn_regressor: dimension mismatch");
  std::vector<double> out(x.rows, 0.0);
  parallel_for_each(
      pool, 0, x.rows, [&](std::size_t i) { out[i] = predict_one(x.row(i)); },
      /*grain=*/8);
  return out;
}

bool KnnRegressor::save(std::ostream& out) const {
  io::write_header(out, io::kKindKnnRegressor);
  io::write_pod(out, static_cast<std::uint64_t>(config_.k));
  io::write_pod(out, config_.distance_weighted);
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_vec(out, train_data_);
  io::write_vec(out, targets_);
  return static_cast<bool>(out);
}

bool KnnRegressor::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnnRegressor) return false;
  std::uint64_t k = 0, dim = 0;
  if (!io::read_pod(in, k) || !io::read_pod(in, config_.distance_weighted) ||
      !io::read_pod(in, dim)) {
    return false;
  }
  if (!io::read_vec(in, train_data_) || !io::read_vec(in, targets_)) return false;
  config_.k = static_cast<std::size_t>(k);
  dim_ = static_cast<std::size_t>(dim);
  if (dim_ == 0 || targets_.size() * dim_ != train_data_.size()) return false;
  train_norms_.resize(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
  return true;
}

RegressionMetrics evaluate_regression(std::span<const double> truth,
                                      std::span<const double> predicted) {
  RegressionMetrics metrics;
  const std::size_t n = std::min(truth.size(), predicted.size());
  if (n == 0) return metrics;
  double abs_sum = 0.0, pct_sum = 0.0, mean = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    abs_sum += std::abs(truth[i] - predicted[i]);
    if (truth[i] > 0.0) {
      pct_sum += std::abs(truth[i] - predicted[i]) / truth[i];
      ++pct_n;
    }
    mean += truth[i];
  }
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  metrics.mae = abs_sum / static_cast<double>(n);
  metrics.mape = pct_n > 0 ? pct_sum / static_cast<double>(pct_n) : 0.0;
  metrics.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  metrics.n = n;
  return metrics;
}

}  // namespace mcb
