// Random Forest classifier (paper §III-D "RF"), following Breiman 2001
// and scikit-learn's defaults: 100 trees, bootstrap row sampling, sqrt(d)
// features per split, Gini criterion, probability averaging across trees
// at inference.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"

namespace mcb {

struct RandomForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree;                ///< tree.max_features 0 => sqrt(d)
  std::size_t max_bins = 256;     ///< histogram quantization granularity
  bool bootstrap = true;
  std::uint64_t seed = 42;
};

class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(RandomForestConfig config = {});

  void fit(FeatureView x, std::span<const Label> y) override;

  /// Batched prediction over the flattened forest (built at fit/load):
  /// raw-float row blocks through FlatForest, no per-row binning.
  /// Bit-identical to the scalar reference path below.
  std::vector<Label> predict(FeatureView x, ThreadPool* pool = nullptr) const override;

  /// Averaged class probabilities, row-major [rows x n_classes].
  std::vector<double> predict_proba(FeatureView x, ThreadPool* pool = nullptr) const;

  /// Scalar reference path (bin each row, recurse every tree per
  /// sample). Kept for equivalence tests and the bench_fig8 speedup
  /// measurement; not used in production serving.
  std::vector<Label> predict_scalar(FeatureView x, ThreadPool* pool = nullptr) const;
  std::vector<double> predict_proba_scalar(FeatureView x, ThreadPool* pool = nullptr) const;

  bool is_fitted() const noexcept override { return !trees_.empty(); }
  std::string name() const override { return "random_forest"; }
  std::size_t n_classes() const noexcept override { return n_classes_; }
  const RandomForestConfig& config() const noexcept { return config_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }
  const DecisionTree& tree(std::size_t i) const { return trees_.at(i); }
  const FlatForest& flat() const noexcept { return flat_; }

  /// Pass a pool before fit() to parallelize tree construction.
  void set_training_pool(ThreadPool* pool) noexcept { train_pool_ = pool; }

  bool save(std::ostream& out) const override;
  bool load(std::istream& in) override;

 private:
  RandomForestConfig config_;
  FeatureBinner binner_;
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
  std::size_t n_classes_ = 0;
  std::size_t n_features_ = 0;
  ThreadPool* train_pool_ = nullptr;
};

}  // namespace mcb
