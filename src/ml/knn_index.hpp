// Pruned spatial index over a KNN training matrix (DESIGN.md §11).
//
// Replaces the brute-force scan for p = 2 queries with two exactness-
// preserving accelerations layered on top of each other:
//
//  1. Exact-duplicate grouping. HPC traces submit the same job text
//     thousands of times (Fugaku jobs arrive in batches of identical
//     jobs, §V-C), and the hashed encoder maps identical feature
//     strings to identical byte rows. The index groups byte-equal rows
//     once at build time, computes each distance once per *unique*
//     point, and expands a group to its first min(k, group size)
//     original row ids — exactly the rows a sequential scan would have
//     kept, since duplicates tie on distance and the shared TopK breaks
//     ties toward the lower row id.
//
//  2. A bounding-box tree (k-d style, modeled on mlpack/THOR's
//     DHrectBound traversal) over the unique points: every node stores
//     a per-dimension hyperrectangle; traversal descends the nearer
//     child first and skips any subtree whose minimum possible distance
//     already exceeds the current k-th best. Alternatively an IVF-flat
//     mode (k-means coarse cells, probe the nprobe nearest) trades
//     exactness for speed at nprobe < n_cells.
//
// Bit-compatibility contract: leaf sweeps compute distances with the
// same tile_dots kernel and the same `||x||^2 - 2 q.x` expression as
// KnnClassifier::top_k_scan, candidates go through the shared TopK
// (ties toward the lower original row id), and pruning compares the
// geometric lower bound against the k-th best with a conservative
// slack, so the tree returns the identical neighbor set — the
// equivalence suite in tests/test_knn_index.cpp asserts it on
// duplicates, ties, narrow dims and tile-boundary shapes.
//
// Queries or training matrices with non-finite values fall outside the
// pruning algebra (NaN poisons box distances); build() refuses
// non-finite data and search() refuses non-finite queries, and callers
// fall back to the scan, keeping behaviour identical on those inputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"

namespace mcb {

enum class KnnIndexMode : std::uint8_t {
  kNone = 0,      ///< index disabled; always scan
  kBoundTree = 1, ///< exact bounding-box tree (default)
  kIvfFlat = 2,   ///< k-means cells, approximate when nprobe < cells
};

const char* knn_index_mode_name(KnnIndexMode mode) noexcept;

/// Inverse of knn_index_mode_name ("none"/"tree"/"ivf"), for config files.
std::optional<KnnIndexMode> parse_knn_index_mode(std::string_view name) noexcept;

struct KnnIndexConfig {
  KnnIndexMode mode = KnnIndexMode::kBoundTree;
  /// Training sets smaller than this keep the brute-force scan: the
  /// tree's traversal overhead only pays for itself at scale.
  std::size_t min_rows = 512;
  std::size_t leaf_size = 64;      ///< max unique points per tree leaf
  std::size_t ivf_clusters = 0;    ///< 0 = ceil(sqrt(unique points))
  std::size_t ivf_nprobe = 8;      ///< cells scanned per query
  std::uint64_t seed = 42;         ///< k-means init seed (IVF mode)
};

struct KnnIndexStats {
  KnnIndexMode mode = KnnIndexMode::kNone;
  std::size_t rows = 0;         ///< original training rows
  std::size_t unique_rows = 0;  ///< byte-distinct rows indexed
  std::size_t nodes = 0;        ///< tree nodes (tree mode)
  std::size_t leaves = 0;       ///< tree leaves (tree mode)
  std::size_t clusters = 0;     ///< k-means cells (IVF mode)
  std::size_t nprobe = 0;       ///< cells probed per query (IVF mode)
  bool exact = false;           ///< results provably match the scan
};

class KnnIndex {
 public:
  /// Build over a row-major matrix. Returns false (index stays unready)
  /// when the data is empty, non-finite, or config.mode is kNone.
  bool build(FeatureView data, const KnnIndexConfig& config);

  bool ready() const noexcept { return stats_.mode != KnnIndexMode::kNone; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t rows() const noexcept { return stats_.rows; }
  const KnnIndexStats& stats() const noexcept { return stats_; }

  /// Top-k by the scan's distance key `||x||^2 - 2 q.x` (query norm
  /// omitted — constant across rows, so the ranking is unchanged).
  /// Fills idx/dist exactly like KnnClassifier::top_k_scan; unfilled
  /// slots hold kTopKNoRow. Returns false when the index cannot serve
  /// the query exactly (not ready, dimension mismatch, or non-finite
  /// query) — the caller must fall back to the scan.
  bool search(std::span<const float> query, std::size_t k, std::vector<std::size_t>& idx,
              std::vector<double>& dist) const;

  /// Binary persistence (io::kKindKnnIndex). load() revalidates every
  /// structural invariant and recomputes norms and node bounds from the
  /// point data, so a corrupt stream is rejected rather than trusted.
  bool save(std::ostream& out) const;
  bool load(std::istream& in);

  void clear();

 private:
  struct Node {
    std::int32_t left = -1;    ///< child node index; -1 = leaf
    std::int32_t right = -1;
    std::uint32_t begin = 0;   ///< unique-point range [begin, end)
    std::uint32_t end = 0;
  };

  /// Groups byte-equal rows, then builds the mode's partition (tree
  /// median splits or k-means cells) over the unique points and gathers
  /// everything into the final segment order via finish_reorder().
  bool dedup(FeatureView data);
  void finish_reorder(const std::vector<std::uint32_t>& order,
                      const std::vector<float>& unique_points,
                      const std::vector<std::uint32_t>& group_begin,
                      const std::vector<std::uint32_t>& group_count,
                      const std::vector<std::uint32_t>& group_rows);
  void recompute_derived();
  double node_min_dist_sq(std::size_t node, const float* q) const;
  void scan_segment(std::uint32_t begin, std::uint32_t end, const float* q,
                    std::size_t k, class TopK& top) const;

  KnnIndexConfig config_;
  KnnIndexStats stats_;
  std::size_t dim_ = 0;

  // Unique points reordered into contiguous leaf/cell segments.
  std::vector<float> points_;              ///< unique_rows x dim
  std::vector<float> norms_;               ///< ||x||^2 per unique point (derived)
  std::vector<std::uint32_t> group_offsets_;  ///< unique_rows + 1, into group_rows_
  std::vector<std::uint32_t> group_rows_;  ///< original row ids, ascending per group

  // Tree mode (children always follow their parent, so traversal and
  // load-validation both terminate).
  std::vector<Node> nodes_;
  std::vector<float> bounds_lo_;           ///< nodes x dim (derived on load)
  std::vector<float> bounds_hi_;           ///< nodes x dim (derived on load)

  // IVF mode.
  std::vector<float> centroids_;           ///< clusters x dim
  std::vector<std::uint32_t> cell_offsets_;  ///< clusters + 1, into point segments
};

}  // namespace mcb
