// Histogram-based CART decision tree (the building block of the Random
// Forest, paper §III-D "RF").
//
// Continuous features are quantized once per training set into at most
// 255 quantile bins (FeatureBinner); each node then finds its best Gini
// split by building a (bin x class) histogram per candidate feature and
// scanning bin boundaries — O(rows_in_node * features_considered) per
// node instead of the O(n log n) sort of classic CART. This is the
// LightGBM-style formulation; it is what makes the paper's Figure-6 grid
// (hundreds of daily retrains) tractable on a laptop-class CPU, and its
// bin-count/accuracy trade-off is measured by bench_ablation_rf.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace mcb {

/// Quantile binner: maps float features to uint8 codes via per-feature
/// sorted edge arrays. Code c covers values in (edge[c-1], edge[c]].
class FeatureBinner {
 public:
  /// Build edges from a training matrix; at most `max_bins` (<= 256)
  /// distinct codes per feature.
  void fit(FeatureView x, std::size_t max_bins = 256);

  bool is_fitted() const noexcept { return !edges_.empty(); }
  std::size_t n_features() const noexcept { return edges_.size(); }
  std::size_t n_bins(std::size_t feature) const { return edges_.at(feature).size() + 1; }

  std::uint8_t bin_value(std::size_t feature, float value) const;

  /// Ascending edge array for one feature (empty for a constant
  /// feature). bin code c means "value <= edges[c]" failed for every
  /// edge before index c — the identity the FlatForest builder uses to
  /// resolve bin-code thresholds back to raw float comparisons.
  std::span<const float> edges(std::size_t feature) const { return edges_.at(feature); }

  /// Transform to *column-major* codes (feature-contiguous), the layout
  /// the tree's histogram builder wants: out[feature * rows + row].
  std::vector<std::uint8_t> transform_column_major(FeatureView x) const;

  void save(std::ostream& out) const;
  bool load(std::istream& in);

 private:
  std::vector<std::vector<float>> edges_;  // per feature, ascending
};

struct TreeConfig {
  std::size_t max_depth = 32;          ///< hard cap; 0 means 1-node stump
  std::size_t min_samples_split = 2;   ///< sklearn default
  std::size_t min_samples_leaf = 1;    ///< sklearn default
  std::size_t max_features = 0;        ///< 0 = all; RF passes sqrt(d)
  double min_impurity_decrease = 0.0;
};

class DecisionTree {
 public:
  /// Train on pre-binned column-major codes. `rows` lists the training
  /// row indices this tree sees (bootstrap sample for forests); `rng`
  /// drives feature subsampling.
  void fit(const std::uint8_t* codes_col_major, std::size_t n_rows_total,
           std::span<const std::uint32_t> rows, std::span<const Label> labels,
           std::size_t n_features, std::size_t n_classes, const TreeConfig& config,
           Rng& rng);

  bool is_fitted() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  std::size_t depth() const noexcept;
  std::size_t n_classes() const noexcept { return n_classes_; }

  /// Class-probability vector for one binned sample (codes indexed by
  /// feature), accumulated into `probs` (+=, for forest averaging).
  void accumulate_proba(const std::uint8_t* codes_row, double* probs) const;

  /// Hard prediction for one binned sample.
  Label predict_binned(const std::uint8_t* codes_row) const;

  void save(std::ostream& out) const;
  bool load(std::istream& in);

  struct Node {
    std::int32_t left = -1;     ///< -1 marks a leaf
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    std::uint8_t threshold = 0; ///< go left when code <= threshold
    std::uint32_t proba_offset = 0;  ///< leaf: offset into proba_ table
  };

  /// Read-only node/leaf access for the FlatForest builder. Children
  /// always have larger indices than their parent; node 0 is the root.
  std::span<const Node> nodes() const noexcept { return nodes_; }
  std::span<const float> leaf_probas() const noexcept { return proba_; }

 private:
  std::vector<Node> nodes_;
  std::vector<float> proba_;  ///< leaf class distributions, n_classes each
  std::size_t n_classes_ = 0;
};

}  // namespace mcb
