#include "ml/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace mcb {

ConfusionMatrix::ConfusionMatrix(std::size_t n_classes)
    : n_(std::max<std::size_t>(n_classes, 1)), cells_(n_ * n_, 0) {}

void ConfusionMatrix::add(Label truth, Label predicted) noexcept {
  if (truth < 0 || predicted < 0) return;
  const auto t = static_cast<std::size_t>(truth);
  const auto p = static_cast<std::size_t>(predicted);
  if (t >= n_ || p >= n_) return;
  ++cells_[t * n_ + p];
  ++total_;
}

void ConfusionMatrix::add_all(std::span<const Label> truth, std::span<const Label> predicted) {
  const std::size_t n = std::min(truth.size(), predicted.size());
  for (std::size_t i = 0; i < n; ++i) add(truth[i], predicted[i]);
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.n_ != n_) return;
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

std::uint64_t ConfusionMatrix::count(Label truth, Label predicted) const {
  return cells_.at(static_cast<std::size_t>(truth) * n_ + static_cast<std::size_t>(predicted));
}

std::uint64_t ConfusionMatrix::support(Label cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < n_; ++p) sum += cells_[c * n_ + p];
  return sum;
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += cells_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(Label cls) const noexcept {
  const auto c = static_cast<std::size_t>(cls);
  std::uint64_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += cells_[t * n_ + c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(cells_[c * n_ + c]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(Label cls) const noexcept {
  const std::uint64_t actual = support(cls);
  if (actual == 0) return 0.0;
  const auto c = static_cast<std::size_t>(cls);
  return static_cast<double>(cells_[c * n_ + c]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(Label cls) const noexcept {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::f1_macro() const noexcept {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) sum += f1(static_cast<Label>(c));
  return sum / static_cast<double>(n_);
}

std::string ConfusionMatrix::render(const std::vector<std::string>& class_names) const {
  std::string out = "truth \\ pred";
  for (std::size_t c = 0; c < n_; ++c) {
    out += '\t';
    out += c < class_names.size() ? class_names[c] : "class" + std::to_string(c);
  }
  out += '\n';
  for (std::size_t t = 0; t < n_; ++t) {
    out += t < class_names.size() ? class_names[t] : "class" + std::to_string(t);
    for (std::size_t p = 0; p < n_; ++p) {
      out += '\t';
      out += std::to_string(cells_[t * n_ + p]);
    }
    out += '\n';
  }
  char foot[128];
  std::snprintf(foot, sizeof(foot), "accuracy=%.4f f1_macro=%.4f n=%llu\n", accuracy(),
                f1_macro(), static_cast<unsigned long long>(total_));
  out += foot;
  return out;
}

}  // namespace mcb
