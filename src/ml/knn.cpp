#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) config_.k = 1;
}

void KnnClassifier::fit(FeatureView x, std::span<const Label> y) {
  if (x.rows != y.size()) throw std::invalid_argument("knn: rows/labels mismatch");
  if (x.rows == 0) throw std::invalid_argument("knn: empty training set");
  dim_ = x.cols;
  train_data_.assign(x.data, x.data + x.rows * x.cols);
  labels_.assign(y.begin(), y.end());
  n_classes_ = 0;
  for (const Label l : labels_) {
    if (l < 0) throw std::invalid_argument("knn: negative label");
    n_classes_ = std::max(n_classes_, static_cast<std::size_t>(l) + 1);
  }
  train_norms_.resize(x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
}

void KnnClassifier::top_k_scan(std::span<const float> query, std::vector<std::size_t>& idx,
                               std::vector<double>& dist) const {
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(config_.k, n);
  idx.assign(k, 0);
  dist.assign(k, std::numeric_limits<double>::infinity());

  // Insertion into a size-k sorted buffer; k is tiny (default 5) so the
  // shift is cheaper than heap bookkeeping.
  const auto consider = [&](std::size_t row, double d) {
    if (d >= dist.back()) return;
    std::size_t pos = k - 1;
    while (pos > 0 && dist[pos - 1] > d) {
      dist[pos] = dist[pos - 1];
      idx[pos] = idx[pos - 1];
      --pos;
    }
    dist[pos] = d;
    idx[pos] = row;
  };

  if (config_.minkowski_p == 2.0) {
    // Squared-distance scan via dot products (monotone in the true
    // distance, so ranking is unaffected).
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      float dot = 0.0F;
      for (std::size_t j = 0; j < dim_; ++j) dot += row[j] * query[j];
      const double d = static_cast<double>(train_norms_[i]) - 2.0 * static_cast<double>(dot);
      consider(i, d);  // query norm is constant across rows; omitted
    }
  } else {
    const double p = config_.minkowski_p;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      double sum = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        sum += std::pow(std::abs(static_cast<double>(row[j]) - query[j]), p);
      }
      consider(i, sum);  // comparing sums ~ comparing p-th roots
    }
  }
}

Label KnnClassifier::predict_one(std::span<const float> query) const {
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<double> dist;
  top_k_scan(query, idx, dist);

  // Majority vote; ties go to the lowest class id (sklearn behaviour).
  std::vector<std::uint32_t> votes(n_classes_, 0);
  for (const std::size_t i : idx) ++votes[static_cast<std::size_t>(labels_[i])];
  Label best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
  }
  return best;
}

std::vector<Label> KnnClassifier::predict(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn: query dimension mismatch");
  std::vector<Label> out(x.rows, 0);
  parallel_for_each(
      pool, 0, x.rows, [&](std::size_t i) { out[i] = predict_one(x.row(i)); },
      /*grain=*/8);
  return out;
}

std::vector<std::size_t> KnnClassifier::kneighbors(std::span<const float> query) const {
  if (!is_fitted()) throw std::logic_error("knn: kneighbors before fit");
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  top_k_scan(query, idx, dist);
  return idx;
}

bool KnnClassifier::save(std::ostream& out) const {
  io::write_header(out, io::kKindKnn);
  io::write_pod(out, static_cast<std::uint64_t>(config_.k));
  io::write_pod(out, config_.minkowski_p);
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_vec(out, train_data_);
  io::write_vec(out, labels_);
  return static_cast<bool>(out);
}

bool KnnClassifier::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnn) return false;
  std::uint64_t k = 0, dim = 0, n_classes = 0;
  if (!io::read_pod(in, k) || !io::read_pod(in, config_.minkowski_p) ||
      !io::read_pod(in, dim) || !io::read_pod(in, n_classes)) {
    return false;
  }
  if (!io::read_vec(in, train_data_) || !io::read_vec(in, labels_)) return false;
  config_.k = static_cast<std::size_t>(k);
  dim_ = static_cast<std::size_t>(dim);
  n_classes_ = static_cast<std::size_t>(n_classes);
  if (dim_ == 0 || labels_.size() * dim_ != train_data_.size()) return false;
  train_norms_.resize(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
  return true;
}

}  // namespace mcb
