#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) config_.k = 1;
}

void KnnClassifier::fit(FeatureView x, std::span<const Label> y) {
  if (x.rows != y.size()) throw std::invalid_argument("knn: rows/labels mismatch");
  if (x.rows == 0) throw std::invalid_argument("knn: empty training set");
  dim_ = x.cols;
  train_data_.assign(x.data, x.data + x.rows * x.cols);
  labels_.assign(y.begin(), y.end());
  n_classes_ = 0;
  for (const Label l : labels_) {
    if (l < 0) throw std::invalid_argument("knn: negative label");
    n_classes_ = std::max(n_classes_, static_cast<std::size_t>(l) + 1);
  }
  train_norms_.resize(x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
}

namespace {

/// Size-k sorted insertion buffer; k is tiny (default 5) so the shift is
/// cheaper than heap bookkeeping. Shared by the scalar and tiled scans
/// so tie behaviour (first-seen row wins on equal distance) is identical.
class TopK {
 public:
  TopK(std::vector<std::size_t>& idx, std::vector<double>& dist, std::size_t k)
      : idx_(idx), dist_(dist), k_(k) {
    idx_.assign(k, 0);
    dist_.assign(k, std::numeric_limits<double>::infinity());
  }

  void consider(std::size_t row, double d) {
    if (d >= dist_.back()) return;
    std::size_t pos = k_ - 1;
    while (pos > 0 && dist_[pos - 1] > d) {
      dist_[pos] = dist_[pos - 1];
      idx_[pos] = idx_[pos - 1];
      --pos;
    }
    dist_[pos] = d;
    idx_[pos] = row;
  }

 private:
  std::vector<std::size_t>& idx_;
  std::vector<double>& dist_;
  std::size_t k_;
};

/// Training rows per tile of the p=2 fast scan: distances for a whole
/// tile are materialized into a small stack buffer before the top-k
/// insertion runs over them.
constexpr std::size_t kScanTile = 128;

/// Dot of one query against `rows` consecutive training rows. Four
/// independent accumulators break the FP-add dependence chain (float
/// addition is not associative, so the compiler cannot do this on its
/// own); the fixed combine order keeps results deterministic across
/// compilers and runs.
void tile_dots(const float* rows, std::size_t n_rows, std::size_t dim, const float* q,
               float* out) {
  for (std::size_t i = 0; i < n_rows; ++i) {
    const float* row = rows + i * dim;
    float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
    std::size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      acc0 += row[j] * q[j];
      acc1 += row[j + 1] * q[j + 1];
      acc2 += row[j + 2] * q[j + 2];
      acc3 += row[j + 3] * q[j + 3];
    }
    for (; j < dim; ++j) acc0 += row[j] * q[j];
    out[i] = (acc0 + acc1) + (acc2 + acc3);
  }
}

}  // namespace

void KnnClassifier::top_k_scan(std::span<const float> query, std::vector<std::size_t>& idx,
                               std::vector<double>& dist) const {
  const std::size_t n = labels_.size();
  TopK top(idx, dist, std::min(config_.k, n));

  if (config_.minkowski_p == 2.0) {
    // Squared-distance scan via dot products (monotone in the true
    // distance, so ranking is unaffected; query norm is constant across
    // rows and omitted).
    float dots[kScanTile];
    for (std::size_t base = 0; base < n; base += kScanTile) {
      const std::size_t rows = std::min(kScanTile, n - base);
      tile_dots(train_data_.data() + base * dim_, rows, dim_, query.data(), dots);
      for (std::size_t i = 0; i < rows; ++i) {
        const double d =
            static_cast<double>(train_norms_[base + i]) - 2.0 * static_cast<double>(dots[i]);
        top.consider(base + i, d);
      }
    }
  } else {
    const double p = config_.minkowski_p;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      double sum = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        sum += std::pow(std::abs(static_cast<double>(row[j]) - query[j]), p);
      }
      top.consider(i, sum);  // comparing sums ~ comparing p-th roots
    }
  }
}

void KnnClassifier::top_k_scan_scalar(std::span<const float> query,
                                      std::vector<std::size_t>& idx,
                                      std::vector<double>& dist) const {
  const std::size_t n = labels_.size();
  TopK top(idx, dist, std::min(config_.k, n));

  if (config_.minkowski_p == 2.0) {
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      float dot = 0.0F;
      for (std::size_t j = 0; j < dim_; ++j) dot += row[j] * query[j];
      const double d = static_cast<double>(train_norms_[i]) - 2.0 * static_cast<double>(dot);
      top.consider(i, d);
    }
  } else {
    const double p = config_.minkowski_p;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      double sum = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        sum += std::pow(std::abs(static_cast<double>(row[j]) - query[j]), p);
      }
      top.consider(i, sum);
    }
  }
}

Label KnnClassifier::vote(std::span<const std::size_t> idx) const {
  // Majority vote; ties go to the lowest class id (sklearn behaviour).
  std::vector<std::uint32_t> votes(n_classes_, 0);
  for (const std::size_t i : idx) ++votes[static_cast<std::size_t>(labels_[i])];
  Label best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
  }
  return best;
}

Label KnnClassifier::predict_one(std::span<const float> query, bool scalar) const {
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<double> dist;
  if (scalar) {
    top_k_scan_scalar(query, idx, dist);
  } else {
    top_k_scan(query, idx, dist);
  }
  return vote(idx);
}

std::vector<Label> KnnClassifier::predict(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn: query dimension mismatch");
  std::vector<Label> out(x.rows, 0);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t i) { out[i] = predict_one(x.row(i), /*scalar=*/false); },
      /*grain=*/8);
  return out;
}

std::vector<Label> KnnClassifier::predict_scalar(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn: query dimension mismatch");
  std::vector<Label> out(x.rows, 0);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t i) { out[i] = predict_one(x.row(i), /*scalar=*/true); },
      /*grain=*/8);
  return out;
}

std::vector<std::size_t> KnnClassifier::kneighbors(std::span<const float> query) const {
  if (!is_fitted()) throw std::logic_error("knn: kneighbors before fit");
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  top_k_scan(query, idx, dist);
  return idx;
}

std::vector<std::size_t> KnnClassifier::kneighbors_scalar(std::span<const float> query) const {
  if (!is_fitted()) throw std::logic_error("knn: kneighbors before fit");
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  top_k_scan_scalar(query, idx, dist);
  return idx;
}

bool KnnClassifier::save(std::ostream& out) const {
  // Refuse to serialize an unfitted model: it would write dim_ == 0,
  // which load() rejects — a silent success here just defers the
  // failure to whoever tries to read the file back.
  if (!is_fitted()) return false;
  io::write_header(out, io::kKindKnn);
  io::write_pod(out, static_cast<std::uint64_t>(config_.k));
  io::write_pod(out, config_.minkowski_p);
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_vec(out, train_data_);
  io::write_vec(out, labels_);
  return static_cast<bool>(out);
}

bool KnnClassifier::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnn) return false;
  std::uint64_t k = 0, dim = 0, n_classes = 0;
  if (!io::read_pod(in, k) || !io::read_pod(in, config_.minkowski_p) ||
      !io::read_pod(in, dim) || !io::read_pod(in, n_classes)) {
    return false;
  }
  if (!io::read_vec(in, train_data_) || !io::read_vec(in, labels_)) return false;
  config_.k = static_cast<std::size_t>(k);
  dim_ = static_cast<std::size_t>(dim);
  n_classes_ = static_cast<std::size_t>(n_classes);
  if (dim_ == 0 || labels_.size() * dim_ != train_data_.size()) return false;
  train_norms_.resize(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const float* row = train_data_.data() + i * dim_;
    double n2 = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) n2 += static_cast<double>(row[j]) * row[j];
    train_norms_[i] = static_cast<float>(n2);
  }
  return true;
}

}  // namespace mcb
