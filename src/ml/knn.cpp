#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/knn_kernels.hpp"
#include "ml/serialize.hpp"
#include "ml/top_k.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace mcb {

namespace {

/// Classes beyond this are a corrupt/hostile model file, not a real
/// MCBound classifier (the paper's taxonomy has two classes): vote()
/// allocates a counter per class, so the header field must be bounded
/// before it is trusted.
constexpr std::uint64_t kMaxClasses = 1ULL << 20;
constexpr std::uint64_t kMaxDim = 1ULL << 24;

}  // namespace

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) config_.k = 1;
}

void KnnClassifier::fit(FeatureView x, std::span<const Label> y) {
  if (x.rows != y.size()) throw std::invalid_argument("knn: rows/labels mismatch");
  if (x.rows == 0) throw std::invalid_argument("knn: empty training set");
  dim_ = x.cols;
  train_data_.assign(x.data, x.data + x.rows * x.cols);
  labels_.assign(y.begin(), y.end());
  n_classes_ = 0;
  for (const Label l : labels_) {
    if (l < 0) throw std::invalid_argument("knn: negative label");
    n_classes_ = std::max(n_classes_, static_cast<std::size_t>(l) + 1);
  }
  train_norms_.resize(x.rows);
  for (std::size_t i = 0; i < x.rows; ++i) {
    train_norms_[i] = row_norm_sq(train_data_.data() + i * dim_, dim_);
  }
  rebuild_index();
}

void KnnClassifier::rebuild_index() {
  index_.clear();
  // The index only accelerates the p = 2 dot-product algebra, and its
  // traversal overhead beats the scan only past min_rows. build() can
  // also refuse (non-finite training data); every predict then simply
  // takes the scan, so the index is strictly opportunistic.
  if (config_.index.mode == KnnIndexMode::kNone) return;
  if (config_.minkowski_p != 2.0) return;
  if (labels_.size() < config_.index.min_rows) return;
  index_.build(FeatureView{train_data_.data(), labels_.size(), dim_}, config_.index);
}

MCB_HOT_PATH void KnnClassifier::top_k_scan(std::span<const float> query,
                                            std::vector<std::size_t>& idx,
                                            std::vector<double>& dist) const {
  const std::size_t n = labels_.size();
  TopK top(idx, dist, std::min(config_.k, n));

  if (config_.minkowski_p == 2.0) {
    // Squared-distance scan via dot products (monotone in the true
    // distance, so ranking is unaffected; query norm is constant across
    // rows and omitted).
    float dots[kScanTile];
    for (std::size_t base = 0; base < n; base += kScanTile) {
      const std::size_t rows = std::min(kScanTile, n - base);
      tile_dots(train_data_.data() + base * dim_, rows, dim_, query.data(), dots);
      for (std::size_t i = 0; i < rows; ++i) {
        const double d =
            static_cast<double>(train_norms_[base + i]) - 2.0 * static_cast<double>(dots[i]);
        top.consider(base + i, d);
      }
    }
  } else {
    const double p = config_.minkowski_p;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      double sum = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        sum += std::pow(std::abs(static_cast<double>(row[j]) - query[j]), p);
      }
      top.consider(i, sum);  // comparing sums ~ comparing p-th roots
    }
  }
}

MCB_HOT_PATH void KnnClassifier::top_k_fast(std::span<const float> query,
                                            std::vector<std::size_t>& idx,
                                            std::vector<double>& dist) const {
  // Index first; any query it cannot serve exactly (not ready, or
  // non-finite features outside the pruning algebra) takes the scan.
  if (index_.ready() && index_.search(query, config_.k, idx, dist)) return;
  top_k_scan(query, idx, dist);
}

MCB_HOT_PATH void KnnClassifier::top_k_scan_scalar(std::span<const float> query,
                                                   std::vector<std::size_t>& idx,
                                                   std::vector<double>& dist) const {
  const std::size_t n = labels_.size();
  TopK top(idx, dist, std::min(config_.k, n));

  if (config_.minkowski_p == 2.0) {
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      float dot = 0.0F;
      for (std::size_t j = 0; j < dim_; ++j) dot += row[j] * query[j];
      const double d = static_cast<double>(train_norms_[i]) - 2.0 * static_cast<double>(dot);
      top.consider(i, d);
    }
  } else {
    const double p = config_.minkowski_p;
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = train_data_.data() + i * dim_;
      double sum = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        sum += std::pow(std::abs(static_cast<double>(row[j]) - query[j]), p);
      }
      top.consider(i, sum);
    }
  }
}

Label KnnClassifier::vote(std::span<const std::size_t> idx) const {
  // Majority vote; ties go to the lowest class id (sklearn behaviour).
  // Unfilled slots (kTopKNoRow, possible when every distance was NaN)
  // carry no vote.
  std::vector<std::uint32_t> votes(n_classes_, 0);
  for (const std::size_t i : idx) {
    if (i == kTopKNoRow) continue;
    ++votes[static_cast<std::size_t>(labels_[i])];
  }
  Label best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(best)]) best = static_cast<Label>(c);
  }
  return best;
}

MCB_HOT_PATH Label KnnClassifier::predict_one(std::span<const float> query,
                                              bool scalar) const {
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<double> dist;
  if (scalar) {
    top_k_scan_scalar(query, idx, dist);
  } else {
    top_k_fast(query, idx, dist);
  }
  return vote(idx);
}

std::vector<Label> KnnClassifier::predict(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn: query dimension mismatch");
  std::vector<Label> out(x.rows, 0);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t i) { out[i] = predict_one(x.row(i), /*scalar=*/false); },
      /*grain=*/8);
  return out;
}

std::vector<Label> KnnClassifier::predict_scalar(FeatureView x, ThreadPool* pool) const {
  if (!is_fitted()) throw std::logic_error("knn: predict before fit");
  if (x.cols != dim_) throw std::invalid_argument("knn: query dimension mismatch");
  std::vector<Label> out(x.rows, 0);
  parallel_for_each(
      pool, 0, x.rows,
      [&](std::size_t i) { out[i] = predict_one(x.row(i), /*scalar=*/true); },
      /*grain=*/8);
  return out;
}

std::vector<std::size_t> KnnClassifier::kneighbors(std::span<const float> query) const {
  if (!is_fitted()) throw std::logic_error("knn: kneighbors before fit");
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  top_k_fast(query, idx, dist);
  return idx;
}

std::vector<std::size_t> KnnClassifier::kneighbors_scalar(std::span<const float> query) const {
  if (!is_fitted()) throw std::logic_error("knn: kneighbors before fit");
  std::vector<std::size_t> idx;
  std::vector<double> dist;
  top_k_scan_scalar(query, idx, dist);
  return idx;
}

bool KnnClassifier::save(std::ostream& out) const {
  // Refuse to serialize an unfitted model: it would write dim_ == 0,
  // which load() rejects — a silent success here just defers the
  // failure to whoever tries to read the file back.
  if (!is_fitted()) return false;
  io::write_header(out, io::kKindKnn);
  io::write_pod(out, static_cast<std::uint64_t>(config_.k));
  io::write_pod(out, config_.minkowski_p);
  io::write_pod(out, static_cast<std::uint64_t>(dim_));
  io::write_pod(out, static_cast<std::uint64_t>(n_classes_));
  io::write_vec(out, train_data_);
  io::write_vec(out, labels_);
  return static_cast<bool>(out);
}

bool KnnClassifier::load(std::istream& in) {
  std::uint32_t kind = 0;
  if (!io::read_header(in, kind) || kind != io::kKindKnn) return false;
  std::uint64_t k = 0, dim = 0, n_classes = 0;
  double minkowski_p = 0.0;
  if (!io::read_pod(in, k) || !io::read_pod(in, minkowski_p) || !io::read_pod(in, dim) ||
      !io::read_pod(in, n_classes)) {
    return false;
  }
  // Every header field is hostile until proven otherwise. The ctor
  // clamps k == 0 but a file bypasses the ctor: k == 0 would build an
  // empty TopK whose dist_.back() is UB. p outside [1, inf) breaks the
  // Minkowski metric axioms (and NaN poisons every comparison).
  // dim/n_classes bound downstream allocations before they happen.
  if (k == 0) return false;
  if (!std::isfinite(minkowski_p) || minkowski_p < 1.0) return false;
  if (dim == 0 || dim > kMaxDim) return false;
  if (n_classes == 0 || n_classes > kMaxClasses) return false;
  // Read into locals and commit only after every check passes, so a
  // rejected stream leaves the model unfitted instead of half-loaded.
  std::vector<float> train_data;
  std::vector<Label> labels;
  if (!io::read_vec(in, train_data, io::kMaxVecElems) ||
      !io::read_vec(in, labels, io::kMaxVecElems)) {
    return false;
  }
  if (labels.empty() || labels.size() * static_cast<std::size_t>(dim) != train_data.size()) {
    return false;
  }
  for (const Label l : labels) {
    // Out-of-range labels would be an OOB write in vote().
    if (l < 0 || static_cast<std::uint64_t>(l) >= n_classes) return false;
  }
  config_.k = static_cast<std::size_t>(k);
  config_.minkowski_p = minkowski_p;
  dim_ = static_cast<std::size_t>(dim);
  n_classes_ = static_cast<std::size_t>(n_classes);
  train_data_ = std::move(train_data);
  labels_ = std::move(labels);
  train_norms_.resize(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    train_norms_[i] = row_norm_sq(train_data_.data() + i * dim_, dim_);
  }
  rebuild_index();
  return true;
}

}  // namespace mcb
