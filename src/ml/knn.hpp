// k-Nearest-Neighbors classifier (paper §III-D "KNN").
//
// Mirrors scikit-learn's KNeighborsClassifier defaults: k = 5, Minkowski
// distance with p = 2, majority vote with ties broken toward the lower
// class id. Training only stores the data ("just building a model
// instance", §V-C); all the work happens at inference.
//
// The inner loop is a blocked brute-force scan. For p = 2 we expand
// ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2 and precompute the training-row
// norms, turning the scan into a pure GEMV-shaped dot-product sweep.
// The fast kernel (ml/knn_kernels.hpp) walks the training matrix in row
// tiles and computes each dot with four independent float accumulators:
// a naive serial reduction is a single FP-add dependence chain the
// compiler may not legally vectorize (float addition is not
// associative), so breaking it into four chains pipelines the add
// latency and unlocks SLP vectorization. The tile's distances land in a
// small buffer before the top-k insertion runs, keeping the hot loop
// branch-free. For general p the direct Minkowski sum is used. Queries
// are embarrassingly parallel across the thread pool. The scalar
// reference scan is kept (and exposed) so tests can assert the tiled
// kernel returns identical neighbor indices.
//
// On top of the scan sits an optional pruned spatial index
// (ml/knn_index.hpp): fit()/load() build it when the training set
// reaches config.index.min_rows and p == 2, predict() consults it
// first, and any query the index cannot serve exactly (non-finite
// features, index disabled/too small) falls back to the tiled scan.
// The shared TopK tie-break keeps both paths bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/knn_index.hpp"

namespace mcb {

struct KnnConfig {
  std::size_t k = 5;
  double minkowski_p = 2.0;
  /// Spatial-index knobs; mode = kNone forces the brute-force scan.
  KnnIndexConfig index;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(FeatureView x, std::span<const Label> y) override;

  /// Batched prediction: spatial index when built, else the tiled p=2
  /// kernel (general p falls back to the direct Minkowski scan).
  std::vector<Label> predict(FeatureView x, ThreadPool* pool = nullptr) const override;

  /// Scalar reference path (one row at a time, serial-reduction dot).
  /// Kept for equivalence tests and the bench_fig8 speedup measurement.
  std::vector<Label> predict_scalar(FeatureView x, ThreadPool* pool = nullptr) const;

  bool is_fitted() const noexcept override { return !labels_.empty(); }
  std::string name() const override { return "knn"; }
  std::size_t n_classes() const noexcept override { return n_classes_; }
  std::size_t train_size() const noexcept { return labels_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  const KnnConfig& config() const noexcept { return config_; }

  /// The spatial index (ready() is false when the scan is in use).
  const KnnIndex& index() const noexcept { return index_; }

  /// Indices of the k nearest training rows to `query` (ascending
  /// distance; kTopKNoRow pads slots no admissible candidate filled,
  /// e.g. non-finite queries). Exposed for tests and for the
  /// future-work "similar jobs" use cases the paper sketches (§VI).
  std::vector<std::size_t> kneighbors(std::span<const float> query) const;

  /// Scalar-scan counterpart of kneighbors (reference for tests).
  std::vector<std::size_t> kneighbors_scalar(std::span<const float> query) const;

  bool save(std::ostream& out) const override;
  bool load(std::istream& in) override;

 private:
  Label predict_one(std::span<const float> query, bool scalar) const;
  Label vote(std::span<const std::size_t> idx) const;
  void top_k_fast(std::span<const float> query, std::vector<std::size_t>& idx,
                  std::vector<double>& dist) const;
  void top_k_scan(std::span<const float> query, std::vector<std::size_t>& idx,
                  std::vector<double>& dist) const;
  void top_k_scan_scalar(std::span<const float> query, std::vector<std::size_t>& idx,
                         std::vector<double>& dist) const;
  void rebuild_index();

  KnnConfig config_;
  std::size_t dim_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<float> train_data_;   // row-major n x dim
  std::vector<float> train_norms_;  // ||x||^2 per row (p == 2 fast path)
  std::vector<Label> labels_;
  KnnIndex index_;
};

}  // namespace mcb
