#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace mcb {

std::uint64_t Rng::bounded(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0, 1] so the log is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double lambda) noexcept {
  double u = 1.0 - uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean regime used by the workload generator.
  double x = std::round(normal(mean, std::sqrt(mean)));
  return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

std::uint64_t Rng::geometric(double p) noexcept {
  p = std::clamp(p, 1e-12, 1.0);
  if (p >= 1.0) return 0;
  double u = 1.0 - uniform();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = uniform() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  k = std::min(k, n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 < n) {
    // Floyd's algorithm: expected O(k) with a small hash set.
    std::unordered_set<std::size_t> chosen;
    chosen.reserve(k * 2);
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = bounded(j + 1);
      if (!chosen.insert(t).second) {
        chosen.insert(j);
        out.push_back(j);
      } else {
        out.push_back(t);
      }
    }
  } else {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + bounded(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  }
  return out;
}

}  // namespace mcb
