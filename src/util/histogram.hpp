// Histograms used to summarize the paper's scatter figures in terminal
// output: a 1-D fixed/log-width histogram and a 2-D log-log density grid
// (the textual equivalent of the roofline scatter plots, Figs. 3 and 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcb {

/// 1-D histogram over [lo, hi) with `bins` equal-width bins; samples
/// outside the range are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;
  std::uint64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;

  /// Value below which a fraction q of the samples fall, linearly
  /// interpolated inside the containing bin (q clamped to [0, 1]).
  /// Returns lo() for an empty histogram. Upper-bounded by hi(): samples
  /// clamped into the edge bins report the bin edge, not their raw value.
  double quantile(double q) const noexcept;

  /// Render as rows of "[lo, hi) count ######" bars scaled to `width`.
  std::string render(int width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// 2-D histogram on log10 axes; the textual roofline plot. X is
/// operational intensity (flops/byte), Y is performance (GFlop/s).
class LogGrid2D {
 public:
  LogGrid2D(double x_lo, double x_hi, std::size_t x_bins,
            double y_lo, double y_hi, std::size_t y_bins);

  void add(double x, double y) noexcept;
  std::uint64_t cell(std::size_t xb, std::size_t yb) const;
  std::size_t x_bins() const noexcept { return x_bins_; }
  std::size_t y_bins() const noexcept { return y_bins_; }
  std::uint64_t total() const noexcept { return total_; }

  /// ASCII density plot (rows = descending y), with density glyphs
  /// " .:-=+*#%@" by log-count. `x_marker` draws a vertical line at the
  /// given x value (we use it for the roofline ridge point).
  std::string render(double x_marker = -1.0) const;

 private:
  std::size_t x_index(double x) const noexcept;
  double x_lo_, x_hi_, y_lo_, y_hi_;  // log10 bounds
  std::size_t x_bins_, y_bins_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace mcb
