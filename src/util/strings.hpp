// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcb {

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Join pieces with the given separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (locale independent).
std::string to_lower(std::string_view text);

/// Case-insensitive (ASCII) substring search, starting at `from`.
/// `needle` must already be lower-case. Allocation-free — hot parse
/// loops use this instead of to_lower + find, which copies the whole
/// haystack per call. Returns npos when absent.
std::size_t ifind(std::string_view text, std::string_view needle,
                  std::size_t from = 0) noexcept;

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Format a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

/// Thousands-separated integer, e.g. 1234567 -> "1,234,567".
std::string with_thousands(std::int64_t value);

/// Parse helpers returning false on malformed input (no exceptions).
bool parse_i64(std::string_view text, std::int64_t& out);
bool parse_u64(std::string_view text, std::uint64_t& out);
bool parse_double(std::string_view text, double& out);

}  // namespace mcb
