// Small file-descriptor and socket helpers shared by the serving
// reactor (src/serve) and the load generator (tools/mcbound_loadgen).
// Pure syscall wrappers — no protocol knowledge lives here.
#pragma once

#include <cstdint>

namespace mcb {

/// Put `fd` into non-blocking mode (O_NONBLOCK via fcntl). Returns
/// false when fcntl fails (bad fd).
bool set_nonblocking(int fd);

/// The kernel's listen-backlog cap (/proc/sys/net/core/somaxconn).
/// `::listen()` silently clamps its backlog argument to this, so a
/// server sized for 10k connections must surface the clamp instead of
/// pretending the configured backlog took effect. Falls back to the
/// historical default of 4096 when the proc file is unreadable.
int somaxconn();

/// Raise RLIMIT_NOFILE's soft limit toward `want` (clamped to the hard
/// limit). Returns the resulting soft limit; on any failure returns the
/// current soft limit unchanged. High-connection-count tools call this
/// before opening sockets so a default 1024 soft limit does not turn a
/// 10k-connection run into EMFILE noise.
std::uint64_t raise_nofile_limit(std::uint64_t want);

}  // namespace mcb
