#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mcb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()>& task, std::size_t max_pending) {
  {
    // mcb-lint: suppress(R18: lock is held for a depth check and one push) mcb-lint: suppress(R19: workers hold this lock only to pop one task; no waits under it)
    MutexLock lock(mutex_);
    if (queue_.size() + in_flight_ >= workers_.size() + max_pending) return false;
    // mcb-lint: suppress(R18: deque chunks are reused; depth is capped by max_pending)
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
  return true;
}

std::size_t ThreadPool::pending() const {
  // mcb-lint: suppress(R18: single size read under the lock) mcb-lint: suppress(R19: single size read under the lock)
  MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::in_flight() const {
  MutexLock lock(mutex_);
  return in_flight_;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.wait(mutex_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1 || n <= grain) {
    chunk_fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, std::max<std::size_t>(1, n / grain));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  Mutex error_mutex;
  Mutex done_mutex;
  CondVar done_cv;

  std::size_t launched = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk_size) ++launched;
  // relaxed: published before any task is submitted; the submit itself
  // (mutex in ThreadPool::submit) orders it with the workers.
  remaining.store(launched, std::memory_order_relaxed);

  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool->submit([&, lo, hi] {
      try {
        chunk_fn(lo, hi);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  MutexLock lock(done_mutex);
  while (remaining.load(std::memory_order_acquire) != 0) done_cv.wait(done_mutex);
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_each(ThreadPool* pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for(
      pool, begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace mcb
