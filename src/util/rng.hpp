// Deterministic pseudo-random number generation for MCBound.
//
// Every stochastic component of the library (workload synthesis, random
// forest bagging, theta sub-sampling) takes an explicit seed so that runs
// are reproducible bit-for-bit. The generator is xoshiro256** seeded via
// SplitMix64, which is both faster and statistically stronger than
// std::mt19937_64 while being trivially copyable (cheap to fork per
// thread or per tree).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace mcb {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (useful for hashing ids).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derive an independent stream (e.g. one per worker thread / per tree).
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(next() ^ mix64(stream ^ 0x9e3779b97f4a7c15ULL));
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller with caching of the second value.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small, PTRS for large).
  std::uint64_t poisson(double mean) noexcept;

  /// Geometric number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept;

  /// Index drawn from unnormalized non-negative weights.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[bounded(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm for
  /// small k, shuffle-prefix otherwise). Result order is unspecified.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mcb
