#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcb {

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> copy(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(lo), copy.end());
  const double lo_val = copy[lo];
  if (hi == lo) return lo_val;
  const double hi_val = *std::min_element(copy.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                                          copy.end());
  return lo_val + (rank - static_cast<double>(lo)) * (hi_val - lo_val);
}

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace mcb
