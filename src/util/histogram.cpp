#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace mcb {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(bins, 1), 0) {}

namespace {

// Clamp-then-cast: converting a double that is NaN or outside the target
// range to an integer is UB (UBSan float-cast-overflow), so the clamp must
// happen in the floating-point domain. NaN maps to bin 0.
std::size_t clamped_bin(double scaled, std::size_t bins) noexcept {
  const double max_bin = static_cast<double>(bins) - 1.0;
  const double clamped = std::isnan(scaled) ? 0.0 : std::clamp(scaled, 0.0, max_bin);
  return static_cast<std::size_t>(clamped);
}

}  // namespace

void Histogram::add(double x, std::uint64_t weight) noexcept {
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0) {
    const double frac = (x - lo_) / span;
    bin = clamped_bin(std::floor(frac * static_cast<double>(counts_.size())),
                      counts_.size());
  }
  counts_[bin] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return bin_lo(bin + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target && counts_[b] > 0) {
      const double within = (target - cumulative) / static_cast<double>(counts_[b]);
      return bin_lo(b) + (bin_hi(b) - bin_lo(b)) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(int width) const {
  std::uint64_t max_count = 1;
  for (const auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char head[80];
    std::snprintf(head, sizeof(head), "[%10.3f, %10.3f) %10llu |", bin_lo(b), bin_hi(b),
                  static_cast<unsigned long long>(counts_[b]));
    out += head;
    const auto bar = static_cast<int>(static_cast<double>(counts_[b]) /
                                      static_cast<double>(max_count) * width);
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

LogGrid2D::LogGrid2D(double x_lo, double x_hi, std::size_t x_bins,
                     double y_lo, double y_hi, std::size_t y_bins)
    : x_lo_(std::log10(x_lo)), x_hi_(std::log10(x_hi)),
      y_lo_(std::log10(y_lo)), y_hi_(std::log10(y_hi)),
      x_bins_(std::max<std::size_t>(x_bins, 1)), y_bins_(std::max<std::size_t>(y_bins, 1)),
      cells_(x_bins_ * y_bins_, 0) {}

std::size_t LogGrid2D::x_index(double x) const noexcept {
  // max() also normalizes NaN to the floor value: max(NaN, c) returns c
  // only when the comparison is false-ordered, so clamp explicitly.
  const double safe = std::isnan(x) ? 1e-30 : std::clamp(x, 1e-30, 1e300);
  const double frac = (std::log10(safe) - x_lo_) / (x_hi_ - x_lo_);
  return clamped_bin(std::floor(frac * static_cast<double>(x_bins_)), x_bins_);
}

void LogGrid2D::add(double x, double y) noexcept {
  const std::size_t xb = x_index(x);
  const double safe_y = std::isnan(y) ? 1e-30 : std::clamp(y, 1e-30, 1e300);
  const double yfrac = (std::log10(safe_y) - y_lo_) / (y_hi_ - y_lo_);
  const std::size_t yb =
      clamped_bin(std::floor(yfrac * static_cast<double>(y_bins_)), y_bins_);
  ++cells_[yb * x_bins_ + xb];
  ++total_;
}

std::uint64_t LogGrid2D::cell(std::size_t xb, std::size_t yb) const {
  return cells_.at(yb * x_bins_ + xb);
}

std::string LogGrid2D::render(double x_marker) const {
  static constexpr char kGlyphs[] = " .:-=+*#%@";
  std::uint64_t max_count = 1;
  for (const auto c : cells_) max_count = std::max(max_count, c);
  const double log_max = std::log1p(static_cast<double>(max_count));
  const std::size_t marker_col = x_marker > 0 ? x_index(x_marker) : x_bins_;

  std::string out;
  for (std::size_t row = y_bins_; row-- > 0;) {
    const double y_axis = std::pow(10.0, y_lo_ + (y_hi_ - y_lo_) *
                                              (static_cast<double>(row) + 0.5) /
                                              static_cast<double>(y_bins_));
    char label[32];
    std::snprintf(label, sizeof(label), "%9.2e |", y_axis);
    out += label;
    for (std::size_t col = 0; col < x_bins_; ++col) {
      const std::uint64_t c = cells_[row * x_bins_ + col];
      if (c == 0) {
        out += (col == marker_col) ? '|' : ' ';
      } else {
        const double level = std::log1p(static_cast<double>(c)) / log_max;
        const auto glyph = static_cast<std::size_t>(level * (sizeof(kGlyphs) - 2));
        out += kGlyphs[std::min<std::size_t>(glyph, sizeof(kGlyphs) - 2)];
      }
    }
    out += '\n';
  }
  out += "          +";
  out.append(x_bins_, '-');
  out += '\n';
  char foot[96];
  std::snprintf(foot, sizeof(foot), "           x: %.2e .. %.2e (log10)%s\n",
                std::pow(10.0, x_lo_), std::pow(10.0, x_hi_),
                x_marker > 0 ? "  '|' marks the ridge point" : "");
  out += foot;
  return out;
}

}  // namespace mcb
