// Tiny command-line flag parser for the benchmark and example binaries.
// Flags are "--name value" or "--name=value"; unknown flags are an error
// so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcb {

class CliFlags {
 public:
  /// Parse argv. On error prints the message + usage to stderr and
  /// returns std::nullopt. "--help" also yields nullopt after printing
  /// usage (callers should exit 0/2 accordingly via `help_requested`).
  static std::optional<CliFlags> parse(int argc, char** argv,
                                       const std::vector<std::string>& known_flags,
                                       const std::string& usage);

  bool has(const std::string& name) const { return values_.contains(name); }
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  bool help_requested() const { return help_; }

 private:
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace mcb
