#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace mcb {
namespace {

const Json kNull{};
const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool fail(std::string msg) {
    if (error.empty()) error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't': return parse_literal("true", Json(true), out);
      case 'f': return parse_literal("false", Json(false), out);
      case 'n': return parse_literal("null", Json(nullptr), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, Json value, Json& out) {
    if (text.substr(pos, lit.size()) != lit) return fail("invalid literal");
    pos += lit.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                         peek() == 'E' || peek() == '-' || peek() == '+')) {
      ++pos;
    }
    if (pos == start) return fail("invalid number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out = Json(v);
    return true;
  }

  bool parse_string(std::string& out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) return fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Json& out) {
    ++pos;  // '['
    JsonArray arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      out = Json(std::move(arr));
      return true;
    }
    for (;;) {
      Json element;
      if (!parse_value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      const char c = text[pos++];
      if (c == ']') break;
      if (c != ',') return fail("expected ',' or ']'");
    }
    out = Json(std::move(arr));
    return true;
  }

  bool parse_object(Json& out) {
    ++pos;  // '{'
    JsonObject obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      out = Json(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || text[pos++] != ':') return fail("expected ':'");
      Json value;
      if (!parse_value(value)) return false;
      obj.emplace(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      const char c = text[pos++];
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}'");
    }
    out = Json(std::move(obj));
    return true;
  }
};

void write_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN
  }
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Json::as_bool(bool fallback) const noexcept {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

double Json::as_double(double fallback) const noexcept {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const noexcept {
  if (const double* d = std::get_if<double>(&value_)) return static_cast<std::int64_t>(std::llround(*d));
  return fallback;
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  return kEmptyString;
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  return kEmptyArray;
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  return kEmptyObject;
}

const Json& Json::operator[](std::string_view key) const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    const auto it = o->find(key);
    if (it != o->end()) return it->second;
  }
  return kNull;
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) value_ = JsonObject{};
  auto& obj = std::get<JsonObject>(value_);
  obj[std::move(key)] = std::move(value);
  return *this;
}

bool Json::contains(std::string_view key) const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    return o->find(key) != o->end();
  }
  return false;
}

Json& Json::push_back(Json value) {
  if (!is_array()) value_ = JsonArray{};
  std::get<JsonArray>(value_).push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return a->size();
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return o->size();
  return 0;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::Number: write_number(out, std::get<double>(value_)); break;
    case Type::String:
      out += '"';
      out += json_escape(std::get<std::string>(value_));
      out += '"';
      break;
    case Type::Array: {
      const auto& arr = std::get<JsonArray>(value_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      const auto& obj = std::get<JsonObject>(value_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        value.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  Json out;
  if (!parser.parse_value(out)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (!parser.at_end()) {
    if (error != nullptr) *error = "trailing characters at offset " + std::to_string(parser.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace mcb
