// Capability-annotated synchronization wrappers (DESIGN.md §7,
// "Compile-time lock discipline").
//
// Every mutex-protected component in src/ uses these instead of the raw
// std primitives (lint rule R6 enforces it): the wrappers carry the
// Clang Thread Safety Analysis attributes from util/annotations.hpp, so
// a Clang build with -DMCB_THREAD_SAFETY=ON proves — at compile time,
// on every build — that each MCB_GUARDED_BY field is only touched with
// its lock held and each MCB_REQUIRES method is only called under the
// right capability. On GCC the attributes vanish and the wrappers
// compile down to the std primitives they hold.
//
// This is the only file in src/ allowed to name std::mutex,
// std::shared_mutex, std::condition_variable or the std lock guards.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/annotations.hpp"

namespace mcb {

/// Exclusive mutex. Prefer the scoped MutexLock; the raw lock()/unlock()
/// exist for the RAII types and for handoff patterns the analysis can
/// model (e.g. CondVar's adopt trick).
class MCB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCB_ACQUIRE();
  void unlock() MCB_RELEASE();
  bool try_lock() MCB_TRY_ACQUIRE(true);

 private:
  friend class CondVar;  // waits on the underlying std::mutex
  std::mutex mutex_;
};

/// Reader/writer mutex: any number of shared holders or one exclusive.
class MCB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MCB_ACQUIRE();
  void unlock() MCB_RELEASE();
  bool try_lock() MCB_TRY_ACQUIRE(true);

  void lock_shared() MCB_ACQUIRE_SHARED();
  void unlock_shared() MCB_RELEASE_SHARED();
  bool try_lock_shared() MCB_TRY_ACQUIRE_SHARED(true);

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive lock over Mutex. One scoped type per mutex kind —
/// each touches exactly one capability, the shape the analysis models
/// best (mirrors the MutexLocker example in the Clang docs). Supports
/// early release + reacquire; the analysis tracks both.
class MCB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MCB_ACQUIRE(mutex) : mutex_(mutex) {
    mutex.lock();
  }
  ~MutexLock() MCB_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before end of scope (e.g. to run I/O outside the lock).
  void unlock() MCB_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }
  /// Reacquire after an early unlock().
  void lock() MCB_ACQUIRE(mutex_) {
    mutex_.lock();
    owned_ = true;
  }

 private:
  Mutex& mutex_;
  bool owned_ = true;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class MCB_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) MCB_ACQUIRE(mutex) : mutex_(mutex) {
    mutex.lock();
  }
  ~ExclusiveLock() MCB_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

  /// Release the exclusive hold before end of scope.
  void unlock() MCB_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }

 private:
  SharedMutex& mutex_;
  bool owned_ = true;
};

/// Scoped shared (reader) lock over SharedMutex.
class MCB_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) MCB_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex.lock_shared();
  }
  ~SharedLock() MCB_RELEASE() {
    if (owned_) mutex_.unlock_shared();
  }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  /// Release the shared hold before end of scope.
  void unlock() MCB_RELEASE() {
    mutex_.unlock_shared();
    owned_ = false;
  }

 private:
  SharedMutex& mutex_;
  bool owned_ = true;
};

/// Condition variable bound to mcb::Mutex. The wait methods take the
/// Mutex (not the scoped lock) so the analysis can express the
/// requirement directly: MCB_REQUIRES(mu) holds on entry, and because a
/// wait reacquires before returning, on exit as well. Callers loop:
///
///   MutexLock lock(mutex_);
///   while (!condition) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, reacquire before returning.
  /// Spurious wakeups happen; always call from a condition loop.
  void wait(Mutex& mu) MCB_REQUIRES(mu);

  /// As wait(), but gives up after `timeout`. Returns false on timeout,
  /// true when notified (or woken spuriously) — the caller's loop
  /// rechecks the condition either way.
  bool wait_for(Mutex& mu, std::chrono::milliseconds timeout) MCB_REQUIRES(mu);

  /// Deadline flavour of wait_for (steady clock).
  bool wait_until(Mutex& mu,
                  std::chrono::steady_clock::time_point deadline) MCB_REQUIRES(mu);

  void notify_one() noexcept;
  void notify_all() noexcept;

 private:
  std::condition_variable cv_;
};

}  // namespace mcb
