#include "util/sync.hpp"

namespace mcb {

void Mutex::lock() { mutex_.lock(); }
void Mutex::unlock() { mutex_.unlock(); }
bool Mutex::try_lock() { return mutex_.try_lock(); }

void SharedMutex::lock() { mutex_.lock(); }
void SharedMutex::unlock() { mutex_.unlock(); }
bool SharedMutex::try_lock() { return mutex_.try_lock(); }
void SharedMutex::lock_shared() { mutex_.lock_shared(); }
void SharedMutex::unlock_shared() { mutex_.unlock_shared(); }
bool SharedMutex::try_lock_shared() { return mutex_.try_lock_shared(); }

// The std::condition_variable API wants a std unique lock, but our
// callers hold the annotated mcb::Mutex. Bridge with the adopt/release
// trick: wrap the already-held native mutex without locking it, let the
// condvar do its atomic release-wait-reacquire, then release() the
// wrapper so the hold survives the wrapper's destruction. The analysis
// sees no lock operations here — the MCB_REQUIRES(mu) contract on the
// declaration is what callers are checked against.

void CondVar::wait(Mutex& mu) {
  std::unique_lock native(mu.mutex_, std::adopt_lock);
  // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions) — every caller
  // loops on its condition (the wrapper cannot see the predicate).
  cv_.wait(native);
  static_cast<void>(native.release());
}

bool CondVar::wait_for(Mutex& mu, std::chrono::milliseconds timeout) {
  std::unique_lock native(mu.mutex_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(native, timeout);
  static_cast<void>(native.release());
  return status == std::cv_status::no_timeout;
}

bool CondVar::wait_until(Mutex& mu, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock native(mu.mutex_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(native, deadline);
  static_cast<void>(native.release());
  return status == std::cv_status::no_timeout;
}

void CondVar::notify_one() noexcept { cv_.notify_one(); }
void CondVar::notify_all() noexcept { cv_.notify_all(); }

}  // namespace mcb
