#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace mcb {

std::string csv_quote(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += csv_quote(fields[i]);
  }
  out += '\n';
  return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_row(fields);
}

bool CsvReader::next_row(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    fields = csv_parse_line(line);
    return true;
  }
  return false;
}

}  // namespace mcb
