#include "util/timer_wheel.hpp"

namespace mcb {

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slots)
    : slots_(slots == 0 ? 1 : slots), tick_ms_(tick_ms == 0 ? 1 : tick_ms) {}

void TimerWheel::schedule(std::uint64_t id, std::uint64_t delay_ms) {
  // Round up: a deadline inside the current tick must not fire a tick
  // early, and a zero delay still waits for the next advance.
  std::uint64_t ticks = (delay_ms + tick_ms_ - 1) / tick_ms_;
  if (ticks == 0) ticks = 1;
  const std::uint64_t due = current_tick_ + ticks;
  // mcb-lint: suppress(R18: slot vectors retain capacity after the wheel's first lap)
  slots_[due % slots_.size()].push_back({id, due});
  ++armed_;
}

void TimerWheel::advance(std::uint64_t now_ms, std::vector<std::uint64_t>& expired) {
  const std::uint64_t target_tick = now_ms / tick_ms_;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    std::vector<Entry>& slot = slots_[current_tick_ % slots_.size()];
    // Swap-erase entries due this lap; later-lap entries stay parked in
    // the slot and are reconsidered when the wheel comes round again.
    std::size_t i = 0;
    while (i < slot.size()) {
      if (slot[i].due_tick <= current_tick_) {
        // mcb-lint: suppress(R18: the caller's expired scratch list retains capacity across ticks)
        expired.push_back(slot[i].id);
        slot[i] = slot.back();
        slot.pop_back();
        --armed_;
      } else {
        ++i;
      }
    }
  }
}

}  // namespace mcb
