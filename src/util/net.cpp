#include "util/net.hpp"

#include <fcntl.h>
#include <sys/resource.h>

#include <algorithm>
#include <fstream>
#include <string>

#include "util/strings.hpp"

namespace mcb {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int somaxconn() {
  std::ifstream in("/proc/sys/net/core/somaxconn");
  std::string line;
  if (in && std::getline(in, line)) {
    std::int64_t value = 0;
    if (parse_i64(trim(line), value) && value > 0) {
      return static_cast<int>(std::min<std::int64_t>(value, 1 << 20));
    }
  }
  return 4096;
}

std::uint64_t raise_nofile_limit(std::uint64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur >= want) return lim.rlim_cur;
  rlimit raised = lim;
  raised.rlim_cur = (lim.rlim_max == RLIM_INFINITY)
                        ? want
                        : std::min<std::uint64_t>(want, lim.rlim_max);
  if (raised.rlim_cur > lim.rlim_cur && ::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
    return raised.rlim_cur;
  }
  return lim.rlim_cur;
}

}  // namespace mcb
