#include "util/table.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mcb {

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> widths(cols, 0);
  std::vector<bool> numeric(cols, true);
  const auto measure = [&](const std::vector<std::string>& row, bool body) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (body) {
        double v = 0.0;
        if (!row[c].empty() && !parse_double(row[c], v)) numeric[c] = false;
      }
    }
  };
  measure(header_, false);
  for (const auto& row : rows_) measure(row, true);

  const auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += (c == 0) ? "| " : " | ";
      const std::size_t pad = widths[c] - std::min(widths[c], cell.size());
      if (numeric[c]) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
    }
    out += " |\n";
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < cols; ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule;
  emit(header_, out);
  out += rule;
  for (const auto& row : rows_) emit(row, out);
  out += rule;
  return out;
}

}  // namespace mcb
