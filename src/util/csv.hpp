// RFC-4180-style CSV reading/writing, used by the job store for
// persistence (our stand-in for the Zenodo F-DATA export).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mcb {

/// Quote a field if it contains a comma, quote or newline.
std::string csv_quote(std::string_view field);

/// Serialize one row (appends trailing '\n').
std::string csv_row(const std::vector<std::string>& fields);

/// Parse a single CSV record (handles quoted fields with embedded commas
/// and doubled quotes). Newlines inside quoted fields are not supported —
/// the job store writes one record per line.
std::vector<std::string> csv_parse_line(std::string_view line);

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}
  /// Returns false at end of stream; skips blank lines.
  bool next_row(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

}  // namespace mcb
