// Clang Thread Safety Analysis annotation macros (DESIGN.md §7,
// "Compile-time lock discipline").
//
// These wrap the `capability`-family attributes so every concurrent
// component in src/ can declare its locking contract — which mutex
// guards which field, which private methods require a held lock — and
// have the compiler prove the discipline on every Clang build
// (-DMCB_THREAD_SAFETY=ON adds -Wthread-safety -Werror=thread-safety).
// On GCC (and any compiler without the attributes) every macro expands
// to nothing, so the annotations are zero-cost documentation there.
//
// The annotated wrappers that carry these attributes live in
// util/sync.hpp (mcb::Mutex, mcb::SharedMutex, the scoped MutexLock /
// ExclusiveLock / SharedLock guards, mcb::CondVar); library code uses
// those, never raw std primitives (lint rule R6).
#pragma once

#if defined(__clang__)
#define MCB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MCB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define MCB_CAPABILITY(x) MCB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (lock objects like mcb::MutexLock).
#define MCB_SCOPED_CAPABILITY MCB_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared hold
/// permits reads; exclusive hold permits writes).
#define MCB_GUARDED_BY(x) MCB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define MCB_PT_GUARDED_BY(x) MCB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held exclusively on entry (and does
/// not release it).
#define MCB_REQUIRES(...) \
  MCB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires at least a shared hold on entry.
#define MCB_REQUIRES_SHARED(...) \
  MCB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively) and holds it on exit.
#define MCB_ACQUIRE(...) MCB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires a shared hold on the capability.
#define MCB_ACQUIRE_SHARED(...) \
  MCB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (either hold kind for scoped locks).
#define MCB_RELEASE(...) MCB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a shared hold on the capability.
#define MCB_RELEASE_SHARED(...) \
  MCB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff the return value
/// equals the first macro argument.
#define MCB_TRY_ACQUIRE(...) \
  MCB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define MCB_TRY_ACQUIRE_SHARED(...) \
  MCB_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant public APIs that
/// lock internally).
#define MCB_EXCLUDES(...) MCB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define MCB_RETURN_CAPABILITY(x) MCB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Policy
/// (DESIGN.md §7): only for code the analysis cannot model — each use
/// carries a comment explaining why, and is reviewed like a cast.
#define MCB_NO_THREAD_SAFETY_ANALYSIS \
  MCB_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------
// Hot-path marker (DESIGN.md §12).
//
// Prefix a function *definition* with MCB_HOT_PATH to declare that its
// body is on the serving or inference fast path. The marker expands to
// nothing — it exists for mcbound_lint, whose hot-path pass
// brace-matches the annotated body and enforces that it stays
// allocation-free (R10), non-throwing and non-blocking (R11), and
// lock-free (R12). Exceptions need an adjacent suppression comment with
// a reason; the marker on a bare declaration is itself an error (R16),
// so an annotation can never silently guard nothing.
#define MCB_HOT_PATH

// ---------------------------------------------------------------------
// Call-graph boundary markers (DESIGN.md §13).
//
// mcbound_lint's whole-program pass propagates obligations *through*
// the call graph: R18 carries the hot-path discipline from every
// MCB_HOT_PATH root into everything it transitively calls, and R19
// carries the reactor's never-blocking contract from reactor_tick /
// handle_event downward. A boundary marker is the author's signed
// assertion that the obligation is discharged at this function by
// construction, so the traversal stops here and does not descend into
// its body or callees. Like MCB_HOT_PATH, both markers expand to
// nothing, must sit on a *definition* (R16 otherwise), and each use
// carries an adjacent comment stating why the assertion holds — a
// boundary without a reason is a reviewer's cue to push back.

/// Cuts R18 (transitive hot-path discipline): the annotated function is
/// a deliberate exit from the fast path — a cold fallback, a bounded
/// per-connection setup, an error path — whose allocations/locks are
/// acceptable by design even though a hot root can reach it.
#define MCB_HOT_PATH_BOUNDARY

/// Cuts R19 (reactor blocking-reachability): the annotated function
/// either runs on the handler pool side of the completion-queue
/// boundary (never on the reactor thread) or performs I/O that cannot
/// block by construction (non-blocking fds, uncontended bounded locks).
#define MCB_REACTOR_BOUNDARY

// ---------------------------------------------------------------------
// Signal-handler marker (DESIGN.md §14).
//
// Prefix a function *definition* with MCB_SIGNAL_HANDLER to declare
// that it runs in signal context. The marker expands to nothing — it
// exists for mcbound_lint rule R22, which brace-matches the annotated
// body and bans async-signal-unsafe constructs there (allocation,
// stdio, locks, symbolization). `backtrace()` itself is permitted: the
// profiler warms it before arming the timer so its one-time lazy
// libgcc load cannot happen in signal context (DESIGN.md §14).
#define MCB_SIGNAL_HANDLER
