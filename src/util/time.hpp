// Civil-time helpers used by the job store and the online scheduler.
//
// All timestamps in the library are Unix epoch seconds (UTC). The
// evaluation period of the paper (2023-12-01 .. 2024-03-31) is expressed
// through these helpers; the day arithmetic (alpha/beta windows) works in
// whole days relative to an epoch timestamp.
#pragma once

#include <cstdint>
#include <string>

namespace mcb {

using TimePoint = std::int64_t;  ///< Unix epoch seconds, UTC.

inline constexpr std::int64_t kSecondsPerDay = 86'400;

struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
};

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
/// Howard Hinnant's public-domain days_from_civil algorithm.
std::int64_t days_from_civil(CivilDate date) noexcept;

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days) noexcept;

/// Midnight UTC of the given date, as epoch seconds.
TimePoint timepoint_from_date(CivilDate date) noexcept;

/// Convenience: timepoint from numeric y/m/d.
TimePoint timepoint_from_ymd(int year, int month, int day) noexcept;

/// Day index (floor) of a timestamp relative to an epoch timestamp.
std::int64_t day_index(TimePoint t, TimePoint epoch) noexcept;

/// "YYYY-MM-DD" for the UTC day containing t.
std::string format_date(TimePoint t);

/// "YYYY-MM-DD HH:MM:SS" UTC.
std::string format_datetime(TimePoint t);

/// Parse "YYYY-MM-DD"; returns false on malformed input.
bool parse_date(const std::string& text, TimePoint& out);

}  // namespace mcb
