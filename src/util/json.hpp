// Minimal JSON value type with a recursive-descent parser and compact /
// pretty serializers. Used by the HTTP API (src/serve) and the framework
// configuration loader (src/core). Supports the full JSON grammar except
// \u surrogate pairs beyond the BMP (sufficient for our ASCII payloads;
// unknown escapes are preserved verbatim rather than rejected).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mcb {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json, std::less<>>;

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const noexcept { return static_cast<Type>(value_.index()); }
  bool is_null() const noexcept { return type() == Type::Null; }
  bool is_bool() const noexcept { return type() == Type::Bool; }
  bool is_number() const noexcept { return type() == Type::Number; }
  bool is_string() const noexcept { return type() == Type::String; }
  bool is_array() const noexcept { return type() == Type::Array; }
  bool is_object() const noexcept { return type() == Type::Object; }

  bool as_bool(bool fallback = false) const noexcept;
  double as_double(double fallback = 0.0) const noexcept;
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  const std::string& as_string() const;  ///< empty string if not a string
  const JsonArray& as_array() const;     ///< empty array if not an array
  const JsonObject& as_object() const;   ///< empty object if not an object

  /// Object field access; returns a shared null for missing keys.
  const Json& operator[](std::string_view key) const;
  /// Mutable object access; converts this value to an object if needed.
  Json& set(std::string key, Json value);
  bool contains(std::string_view key) const;

  /// Array helpers.
  Json& push_back(Json value);
  std::size_t size() const noexcept;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string pretty() const;

  /// Parse; returns std::nullopt and fills `error` (if given) on failure.
  static std::optional<Json> parse(std::string_view text, std::string* error = nullptr);

  friend bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

 private:
  void write(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Escape a string for inclusion in JSON output (without quotes).
std::string json_escape(std::string_view raw);

}  // namespace mcb
