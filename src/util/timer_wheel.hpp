// Hashed timer wheel for coarse connection deadlines (DESIGN.md §6).
// The serving reactor needs tens of thousands of concurrently armed
// idle/request/write-stall deadlines; a per-deadline priority queue
// would cost O(log n) per re-arm and churn on every byte received. The
// wheel makes schedule and expiry O(1) amortized at the price of tick
// granularity, which is fine for deadlines measured in hundreds of
// milliseconds.
//
// Cancellation is lazy: there is no cancel() — the owner keeps the
// authoritative deadline itself, treats a fire as a wake-up, re-checks
// the real deadline, and either acts or re-schedules. Ids whose owner
// has disappeared simply fire once and are ignored. To keep the entry
// population bounded the caller must keep at most one live entry per id
// (schedule again only after the previous entry fired).
//
// Single-threaded by design: the reactor owns the wheel; no locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcb {

class TimerWheel {
 public:
  /// `tick_ms` is the expiry granularity; `slots` the wheel
  /// circumference. Delays beyond tick_ms * slots are carried across
  /// laps (entries re-examined once per lap, not per tick).
  explicit TimerWheel(std::uint64_t tick_ms = 10, std::size_t slots = 256);

  /// Arm `id` to fire `delay_ms` after the wheel's current time (the
  /// `now_ms` of the last advance). Rounded up to a whole tick and at
  /// least one tick into the future, so a zero delay fires on the next
  /// advance, never immediately.
  void schedule(std::uint64_t id, std::uint64_t delay_ms);

  /// Move time forward to the absolute `now_ms` and append every id
  /// whose tick has come to `expired` (fire order across different
  /// ticks is chronological; within one tick it is insertion order).
  /// Time never goes backwards; a stale `now_ms` is a no-op.
  void advance(std::uint64_t now_ms, std::vector<std::uint64_t>& expired);

  std::uint64_t tick_ms() const noexcept { return tick_ms_; }
  /// Entries currently armed (including not-yet-fired stale ones).
  std::size_t armed() const noexcept { return armed_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t due_tick;
  };

  std::vector<std::vector<Entry>> slots_;
  std::uint64_t tick_ms_;
  std::uint64_t current_tick_ = 0;
  std::size_t armed_ = 0;
};

}  // namespace mcb
