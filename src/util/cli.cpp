#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace mcb {

std::optional<CliFlags> CliFlags::parse(int argc, char** argv,
                                        const std::vector<std::string>& known_flags,
                                        const std::string& usage) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s\n", usage.c_str());
      flags.help_ = true;
      return flags;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "unexpected argument '%s'\n%s\n", arg.c_str(), usage.c_str());
      return std::nullopt;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag '--%s' requires a value\n%s\n", name.c_str(), usage.c_str());
      return std::nullopt;
    }
    if (std::find(known_flags.begin(), known_flags.end(), name) == known_flags.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s\n", name.c_str(), usage.c_str());
      return std::nullopt;
    }
    flags.values_[name] = value;
  }
  return flags;
}

std::string CliFlags::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  return parse_i64(it->second, out) ? out : fallback;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double out = 0.0;
  return parse_double(it->second, out) ? out : fallback;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string v = to_lower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace mcb
