// Fixed-size worker pool with a blocking task queue and a chunked
// parallel_for. This is the shared-memory parallel substrate used by the
// random forest trainer, the KNN query scan and the workload generator.
//
// Design notes:
//  * Tasks are type-erased std::move_only_function-style callables.
//  * parallel_for splits [begin, end) into contiguous chunks so each
//    worker touches a contiguous slice (cache friendliness matters more
//    than perfect load balance for our kernels).
//  * On a single-core machine the pool degrades to one worker; callers
//    may also request serial execution by passing concurrency 0/1.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace mcb {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Bounded enqueue: accepts only while the total work in the pool
  /// (queued + executing) is below size() + max_pending, i.e. max_pending
  /// is the backlog allowed beyond one task per worker. max_pending == 0
  /// admits a task only when a worker is free to take it immediately.
  /// Returns false (task untouched) when the pool is saturated — the
  /// load-shedding primitive used by the HTTP connection executor.
  bool try_submit(std::function<void()>& task, std::size_t max_pending);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Tasks queued but not yet picked up by a worker (racy snapshot).
  std::size_t pending() const;
  /// Tasks currently executing (racy snapshot).
  std::size_t in_flight() const;

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only by ctor/dtor threads
  mutable Mutex mutex_;
  std::deque<std::function<void()>> queue_ MCB_GUARDED_BY(mutex_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ MCB_GUARDED_BY(mutex_) = 0;
  bool stop_ MCB_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for every i in [begin, end) using the given pool, blocking
/// until completion. Chunks are contiguous; `grain` is the minimum chunk
/// size (prevents oversubscription on tiny ranges). Passing pool == nullptr
/// or a 1-thread range executes serially on the calling thread.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                  std::size_t grain = 64);

/// Element-wise convenience overload.
void parallel_for_each(ThreadPool* pool, std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t grain = 64);

}  // namespace mcb
