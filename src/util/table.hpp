// ASCII table renderer used by the benchmark binaries to print the
// paper's tables/figure series in aligned, diff-friendly form.
#pragma once

#include <string>
#include <vector>

namespace mcb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header rule; columns are right-aligned when every body
  /// cell parses as a number, left-aligned otherwise.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcb
