// Streaming statistics and timing helpers.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace mcb {

/// Welford single-pass accumulator: mean / variance / min / max / count.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const OnlineStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(count_ + other.count_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / n;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double sum() const noexcept { return sum_; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile of a sample (copies and partially sorts).
double percentile(std::span<const double> values, double p);

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// Wall-clock stopwatch on the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcb
