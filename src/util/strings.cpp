#include "util/strings.hpp"

#include <charconv>
#include <cstdio>

namespace mcb {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
  };
  std::size_t b = 0, e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::size_t ifind(std::string_view text, std::string_view needle,
                  std::size_t from) noexcept {
  if (needle.empty()) return from <= text.size() ? from : std::string_view::npos;
  if (needle.size() > text.size()) return std::string_view::npos;
  const auto lower = [](char c) {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
  };
  for (std::size_t i = from; i + needle.size() <= text.size(); ++i) {
    std::size_t j = 0;
    while (j < needle.size() && lower(text[i + j]) == needle[j]) ++j;
    if (j == needle.size()) return i;
  }
  return std::string_view::npos;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.starts_with(prefix);
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.ends_with(suffix);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string with_thousands(std::int64_t value) {
  // Negate in unsigned space: -INT64_MIN overflows int64_t (UB).
  const std::uint64_t magnitude =
      value < 0 ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return value < 0 ? "-" + out : out;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  text = trim(text);
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  text = trim(text);
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  text = trim(text);
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

}  // namespace mcb
