#include "util/time.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace mcb {

std::int64_t days_from_civil(CivilDate date) noexcept {
  std::int64_t y = date.year;
  const std::int64_t m = date.month;
  const std::int64_t d = date.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const std::int64_t yoe = y - era * 400;                                      // [0, 399]
  const std::int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;     // [0, 365]
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;              // [0, 146096]
  return era * 146097 + doe - 719468;
}

CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::int64_t doe = z - era * 146097;                                   // [0, 146096]
  const std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const std::int64_t mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const std::int64_t d = doy - (153 * mp + 2) / 5 + 1;                         // [1, 31]
  const std::int64_t m = mp + (mp < 10 ? 3 : -9);                              // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m), static_cast<int>(d)};
}

TimePoint timepoint_from_date(CivilDate date) noexcept {
  return days_from_civil(date) * kSecondsPerDay;
}

TimePoint timepoint_from_ymd(int year, int month, int day) noexcept {
  return timepoint_from_date(CivilDate{year, month, day});
}

std::int64_t day_index(TimePoint t, TimePoint epoch) noexcept {
  const std::int64_t diff = t - epoch;
  // Floor division for negative offsets.
  return diff >= 0 ? diff / kSecondsPerDay : -((-diff + kSecondsPerDay - 1) / kSecondsPerDay);
}

std::string format_date(TimePoint t) {
  const std::int64_t days = day_index(t, 0);
  const CivilDate d = civil_from_days(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_datetime(TimePoint t) {
  const std::int64_t days = day_index(t, 0);
  const CivilDate d = civil_from_days(days);
  std::int64_t secs = t - days * kSecondsPerDay;
  const int h = static_cast<int>(secs / 3600);
  const int m = static_cast<int>((secs % 3600) / 60);
  const int s = static_cast<int>(secs % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", d.year, d.month, d.day, h, m, s);
  return buf;
}

bool parse_date(const std::string& text, TimePoint& out) {
  const auto parts = split(trim(text), '-');
  if (parts.size() != 3) return false;
  std::int64_t y = 0, m = 0, d = 0;
  if (!parse_i64(parts[0], y) || !parse_i64(parts[1], m) || !parse_i64(parts[2], d)) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  out = timepoint_from_ymd(static_cast<int>(y), static_cast<int>(m), static_cast<int>(d));
  return true;
}

}  // namespace mcb
